//! Deterministic text rendering of schedule plans.
//!
//! The report is the CLI's primary output and the subject of the
//! determinism property test: same queue, fleet and seed must produce a
//! **byte-identical** report. Everything here is fixed-precision
//! formatting over already-deterministic numbers — no timestamps, no
//! map iteration, no locale.

use mc_obs::{tags, Recorder, TagValue};

use crate::fleet::Fleet;
use crate::job::JobSpec;
use crate::plan::SchedulePlan;

fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Feed one plan's placements to a [`Recorder`] as spans: each job
/// becomes a `sched.job` span from the common start (t = 0) to its
/// predicted finish, tagged `job`, `node` and `policy`. The chrome
/// exporter lays node-tagged spans out on per-node tracks, so a
/// schedule opens in chrome://tracing / Perfetto as a per-node
/// occupancy timeline.
///
/// Placement finish times are deterministic model predictions, so the
/// recorded spans are deterministic too.
pub fn record_plan_spans(rec: &dyn Recorder, jobs: &[JobSpec], plan: &SchedulePlan) {
    for p in &plan.placements {
        let span_tags = [
            (tags::JOB, TagValue::Str(&jobs[p.job].name)),
            (tags::NODE, TagValue::U64(p.node as u64)),
            (tags::POLICY, TagValue::Str(&plan.policy)),
        ];
        rec.record_span("sched.job", &span_tags, 0.0, p.finish);
    }
}

/// Render one or more policies' plans over the same queue and fleet.
pub fn render(
    fleet: &Fleet,
    jobs: &[JobSpec],
    plans: &[SchedulePlan],
    max_slowdown: f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "schedule: {} jobs on {} (max-slowdown {:.2})\n",
        jobs.len(),
        fleet.describe(),
        max_slowdown
    ));
    let name_w = jobs.iter().map(|j| j.name.len()).max().unwrap_or(3).max(3);
    for plan in plans {
        out.push('\n');
        out.push_str(&format!("policy {}\n", plan.policy));
        out.push_str(&format!(
            "  {}  node  cores  comp  comm  finish_s      slowdown\n",
            pad("job", name_w)
        ));
        for p in &plan.placements {
            out.push_str(&format!(
                "  {}  {:<4}  {:<5}  {:<4}  {:<4}  {:<12.6}  {:.2}\n",
                pad(&jobs[p.job].name, name_w),
                p.node,
                p.cores,
                p.m_comp.index(),
                p.m_comm.index(),
                p.finish,
                p.slowdown
            ));
        }
        out.push_str(&format!(
            "  makespan_s {:.6}  throughput_jobs_per_s {:.4}  colocated {}  violations {}\n",
            plan.makespan, plan.throughput, plan.colocated, plan.violations
        ));
    }
    if plans.len() > 1 {
        out.push('\n');
        out.push_str("policy comparison\n");
        out.push_str("  policy            makespan_s    throughput  colocated  violations\n");
        for plan in plans {
            out.push_str(&format!(
                "  {}  {:<12.6}  {:<10.4}  {:<9}  {}\n",
                pad(&plan.policy, 16),
                plan.makespan,
                plan.throughput,
                plan.colocated,
                plan.violations
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Evaluator;
    use mc_model::{ModelRegistry, PhaseProfile};
    use mc_topology::platforms;

    #[test]
    fn report_is_byte_stable_and_names_every_job() {
        let reg = ModelRegistry::new(4);
        let p = platforms::henri();
        let fleet = Fleet::build(vec![p.clone(), p], &reg).unwrap();
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec {
                name: format!("job-{i}"),
                profile: PhaseProfile {
                    compute_bytes: 4e9 * (i + 1) as f64,
                    comm_bytes: 2e9,
                    max_cores: 8,
                },
            })
            .collect();
        let mut ev = Evaluator::new(&jobs, &fleet);
        let plans = vec![
            ev.plan("first_fit", &[0, 0, 1], 1.25),
            ev.plan("round_robin", &[0, 1, 0], 1.25),
        ];
        let a = render(&fleet, &jobs, &plans, 1.25);
        let b = render(&fleet, &jobs, &plans, 1.25);
        assert_eq!(a, b);
        assert!(a.contains("policy comparison"));
        for j in &jobs {
            assert!(a.contains(&j.name), "{a}");
        }
        assert!(a.contains("makespan_s "));
    }

    #[test]
    fn plan_spans_bridge_records_per_job_spans() {
        use mc_obs::Registry;
        let reg = ModelRegistry::new(4);
        let p = platforms::henri();
        let fleet = Fleet::build(vec![p.clone(), p], &reg).unwrap();
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec {
                name: format!("job-{i}"),
                profile: PhaseProfile {
                    compute_bytes: 4e9 * (i + 1) as f64,
                    comm_bytes: 2e9,
                    max_cores: 8,
                },
            })
            .collect();
        let mut ev = Evaluator::new(&jobs, &fleet);
        let plan = ev.plan("first_fit", &[0, 0, 1], 1.25);

        let rec = Registry::new();
        record_plan_spans(&rec, &jobs, &plan);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), plan.placements.len());
        for (s, p) in snap.spans.iter().zip(&plan.placements) {
            assert_eq!(s.stage, "sched.job");
            assert_eq!(s.start_s, 0.0);
            assert_eq!(s.duration_s, p.finish);
            let want = [
                ("job".to_string(), jobs[p.job].name.clone()),
                ("node".to_string(), p.node.to_string()),
                ("policy".to_string(), "first_fit".to_string()),
            ];
            for tag in want {
                assert!(s.tags.contains(&tag), "missing {tag:?} in {:?}", s.tags);
            }
        }
    }
}
