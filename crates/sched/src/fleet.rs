//! The fleet: simulated nodes with calibrated models.
//!
//! Every node is one [`Platform`] plus the calibrated
//! [`ContentionModel`] the contention-aware policy consults. Models
//! come out of the shared [`ModelRegistry`], so a fleet of N identical
//! nodes calibrates **once** — the registry's populate-once semantics
//! (PR 4) do the deduplication, and a server embedding the scheduler
//! reuses whatever the serve path already cached.

use std::sync::Arc;

use mc_membench::{calibration_placements, calibration_sweeps, BenchConfig};
use mc_model::{ContentionModel, McError, ModelRegistry, RegistryKey};
use mc_topology::Platform;

use crate::error::SchedError;
use crate::job::JobSpec;

/// One simulated cluster node.
#[derive(Debug, Clone)]
pub struct FleetNode {
    /// The node's hardware.
    pub platform: Platform,
    /// The model calibrated for that hardware (shared via the registry).
    pub model: Arc<ContentionModel>,
    /// Compute cores the scheduler may grant (the platform's benchmended
    /// compute-core budget, NIC-reserved core excluded).
    pub cores: usize,
}

/// The whole fleet, node index = position.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The nodes, in command-line order.
    pub nodes: Vec<FleetNode>,
}

impl Fleet {
    /// Build a fleet from platforms, calibrating each **distinct**
    /// platform once through `registry`. An empty platform list is a
    /// typed error, not a panic.
    pub fn build(platforms: Vec<Platform>, registry: &ModelRegistry) -> Result<Fleet, SchedError> {
        if platforms.is_empty() {
            return Err(SchedError::EmptyFleet);
        }
        let mut nodes = Vec::with_capacity(platforms.len());
        for p in platforms {
            let key = RegistryKey::new(p.name(), "default", calibration_placements(&p));
            let (model, _cached) = registry
                .get_or_insert_with(&key, || {
                    let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
                    ContentionModel::calibrate(&p.topology, &local, &remote).map_err(McError::from)
                })
                .map_err(SchedError::Model)?;
            let cores = p.max_compute_cores();
            nodes.push(FleetNode {
                platform: p,
                model,
                cores,
            });
        }
        Ok(Fleet { nodes })
    }

    /// Compute cores of the widest node (0 only for an empty fleet).
    pub fn widest(&self) -> usize {
        self.nodes.iter().map(|n| n.cores).max().unwrap_or(0)
    }

    /// Reject degenerate queues: empty, or containing a job whose core
    /// request no node can honour.
    pub fn validate_jobs(&self, jobs: &[JobSpec]) -> Result<(), SchedError> {
        if jobs.is_empty() {
            return Err(SchedError::EmptyQueue);
        }
        let widest = self.widest();
        for j in jobs {
            if j.profile.max_cores > widest {
                return Err(SchedError::JobTooWide {
                    job: j.name.clone(),
                    max_cores: j.profile.max_cores,
                    widest,
                });
            }
        }
        Ok(())
    }

    /// Human description of the fleet's composition, e.g.
    /// `henri x4` or `henri x2 + dahu x1` (run-length over node order).
    pub fn describe(&self) -> String {
        let mut parts: Vec<(String, usize)> = Vec::new();
        for n in &self.nodes {
            match parts.last_mut() {
                Some((name, count)) if *name == n.platform.name() => *count += 1,
                _ => parts.push((n.platform.name().to_string(), 1)),
            }
        }
        parts
            .iter()
            .map(|(name, count)| format!("{name} x{count}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::PhaseProfile;
    use mc_topology::platforms;

    fn job(name: &str, max_cores: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            profile: PhaseProfile {
                compute_bytes: 1e9,
                comm_bytes: 1e9,
                max_cores,
            },
        }
    }

    #[test]
    fn empty_fleet_is_a_typed_error() {
        let reg = ModelRegistry::new(4);
        match Fleet::build(Vec::new(), &reg) {
            Err(SchedError::EmptyFleet) => {}
            other => panic!("expected EmptyFleet, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_platforms_calibrate_once_via_the_registry() {
        let reg = ModelRegistry::new(4);
        let p = platforms::henri();
        let fleet = Fleet::build(vec![p.clone(), p.clone(), p], &reg).unwrap();
        assert_eq!(fleet.nodes.len(), 3);
        let stats = reg.stats();
        assert_eq!(stats.misses, 1, "one calibration for three nodes");
        assert_eq!(stats.hits, 2);
        assert_eq!(fleet.describe(), "henri x3");
        // All three nodes share one model allocation.
        assert!(Arc::ptr_eq(&fleet.nodes[0].model, &fleet.nodes[2].model));
    }

    #[test]
    fn job_validation_catches_degenerate_queues() {
        let reg = ModelRegistry::new(4);
        let fleet = Fleet::build(vec![platforms::henri()], &reg).unwrap();
        assert_eq!(fleet.validate_jobs(&[]), Err(SchedError::EmptyQueue));
        let widest = fleet.widest();
        let e = fleet.validate_jobs(&[job("wide", widest + 1)]).unwrap_err();
        assert!(matches!(e, SchedError::JobTooWide { .. }), "{e}");
        assert_eq!(e.category(), mc_model::ErrorCategory::InvalidData);
        // Uncapped (0) and exactly-widest jobs pass.
        fleet
            .validate_jobs(&[job("ok", 0), job("full", widest)])
            .unwrap();
    }
}
