//! Assignment evaluation: two-layer allocation + node simulation.
//!
//! An *assignment* maps every job to a node. Turning that into
//! predicted finish times happens in two layers, after the wright build
//! scheduler's "how many jobs × how many cores each" split:
//!
//! 1. **cores-per-job** — a node hosting `k` jobs grants each
//!    `min(request, cores/k)` cores (never below one), the
//!    `total_cpus / active_dockyards` share rule;
//! 2. **placement** — co-located jobs spread across NUMA nodes
//!    round-robin (slot `s` computes on node `s mod numa`) with
//!    communication buffers homed one NUMA node over, the separated
//!    placement the paper's advisor prefers.
//!
//! The resulting finite stream multiset runs on the node's simulated
//! fabric ([`NodeWorld`]); per-job *slowdown* is the finish time under
//! co-location divided by the job's finish time with the node to
//! itself. Node evaluations are memoized by (platform, job set) — the
//! search layers revisit the same sets constantly, so an exhaustive
//! small-case sweep or a long anneal costs few distinct simulations.

use std::collections::HashMap;
use std::rc::Rc;

use mc_memsim::{JobLoad, NodeWorld};
use mc_topology::NumaId;

use crate::fleet::{Fleet, FleetNode};
use crate::job::JobSpec;

/// Objective value of one assignment: lexicographically fewer
/// `--max-slowdown` violations first, then smaller cluster makespan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Co-located jobs whose slowdown exceeds the threshold.
    pub violations: usize,
    /// Cluster makespan, seconds (max over node makespans).
    pub makespan: f64,
}

impl Score {
    /// Total order: fewer violations, then smaller makespan.
    pub fn order(&self, other: &Score) -> std::cmp::Ordering {
        self.violations
            .cmp(&other.violations)
            .then(self.makespan.total_cmp(&other.makespan))
    }
}

/// One job's placement in a finished plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Job index into the queue.
    pub job: usize,
    /// Fleet node the job runs on.
    pub node: usize,
    /// Cores granted (≤ the job's request).
    pub cores: usize,
    /// NUMA node holding the job's computation data.
    pub m_comp: NumaId,
    /// NUMA node holding the job's communication buffers.
    pub m_comm: NumaId,
    /// Predicted finish time, seconds from the common start.
    pub finish: f64,
    /// Finish time relative to having the node alone (≥ 1).
    pub slowdown: f64,
}

/// A fully evaluated schedule for one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePlan {
    /// Policy that produced the assignment.
    pub policy: String,
    /// Per-job placements, queue order.
    pub placements: Vec<Placement>,
    /// Cluster makespan, seconds.
    pub makespan: f64,
    /// Jobs per second at that makespan.
    pub throughput: f64,
    /// Jobs sharing their node with at least one other job.
    pub colocated: usize,
    /// Co-located jobs whose slowdown exceeds the threshold.
    pub violations: usize,
}

/// Memoized evaluation of one node's co-located job set.
#[derive(Debug)]
pub struct NodeEval {
    /// Allocation per set slot (same order as the sorted set).
    pub allocs: Vec<JobLoad>,
    /// Finish time per set slot.
    pub finish: Vec<f64>,
    /// Node makespan.
    pub makespan: f64,
}

/// Two-layer allocation for a sorted job set on one node.
fn alloc_for(node: &FleetNode, jobs: &[JobSpec], set: &[u32]) -> Vec<JobLoad> {
    let k = set.len().max(1);
    let share = (node.cores / k).max(1);
    let numa = node.platform.topology.numa_count() as u16;
    set.iter()
        .enumerate()
        .map(|(slot, &j)| {
            let prof = &jobs[j as usize].profile;
            let cap = if prof.max_cores == 0 {
                node.cores
            } else {
                prof.max_cores
            };
            let comp = NumaId::new(slot as u16 % numa);
            let comm = if numa > 1 {
                NumaId::new((slot as u16 + 1) % numa)
            } else {
                NumaId::new(0)
            };
            JobLoad {
                cores: cap.min(share).max(1),
                comp_numa: comp,
                comm_numa: comm,
                compute_bytes: prof.compute_bytes,
                comm_bytes: prof.comm_bytes,
                comm_pool: None,
            }
        })
        .collect()
}

/// Memoizing evaluator shared by every policy and search over one
/// (queue, fleet) pair.
pub struct Evaluator<'a> {
    /// The job queue.
    pub jobs: &'a [JobSpec],
    /// The fleet.
    pub fleet: &'a Fleet,
    /// One simulated node per *distinct* platform.
    worlds: Vec<NodeWorld>,
    /// Fleet node index → world index.
    node_world: Vec<usize>,
    cache: HashMap<(usize, Vec<u32>), Rc<NodeEval>>,
    sims: usize,
}

impl<'a> Evaluator<'a> {
    /// Build an evaluator; nodes of the same platform share a world and
    /// a memo table.
    pub fn new(jobs: &'a [JobSpec], fleet: &'a Fleet) -> Self {
        let mut worlds: Vec<NodeWorld> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let node_world = fleet
            .nodes
            .iter()
            .map(|n| {
                let name = n.platform.name().to_string();
                match names.iter().position(|x| *x == name) {
                    Some(i) => i,
                    None => {
                        names.push(name);
                        worlds.push(NodeWorld::new(&n.platform));
                        worlds.len() - 1
                    }
                }
            })
            .collect();
        Evaluator {
            jobs,
            fleet,
            worlds,
            node_world,
            cache: HashMap::new(),
            sims: 0,
        }
    }

    /// Distinct node simulations run so far (cache misses).
    pub fn sims(&self) -> usize {
        self.sims
    }

    /// Evaluate one node's job set (`set` must be sorted ascending).
    /// Memoized per (platform, set).
    pub fn node_eval(&mut self, node: usize, set: &[u32]) -> Rc<NodeEval> {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be sorted");
        let world = self.node_world[node];
        if let Some(hit) = self.cache.get(&(world, set.to_vec())) {
            return Rc::clone(hit);
        }
        let allocs = alloc_for(&self.fleet.nodes[node], self.jobs, set);
        let run = self.worlds[world].run(&allocs);
        self.sims += 1;
        let eval = Rc::new(NodeEval {
            allocs,
            finish: run.jobs.iter().map(|j| j.finish()).collect(),
            makespan: run.makespan,
        });
        self.cache.insert((world, set.to_vec()), Rc::clone(&eval));
        eval
    }

    /// Finish time of `job` with `node` all to itself.
    pub fn solo_finish(&mut self, node: usize, job: u32) -> f64 {
        self.node_eval(node, &[job]).makespan
    }

    /// Slowdown each member of `set` suffers on `node` (parallel to the
    /// set), plus the node makespan.
    pub fn slowdowns(&mut self, node: usize, set: &[u32]) -> (Vec<f64>, f64) {
        let eval = self.node_eval(node, set);
        let makespan = eval.makespan;
        let finishes: Vec<f64> = eval.finish.clone();
        let out = set
            .iter()
            .zip(finishes)
            .map(|(&j, f)| {
                let solo = self.solo_finish(node, j);
                if solo > 0.0 {
                    // Co-location can only add streams, so a ratio below
                    // 1 is event-ordering rounding noise, not a speedup.
                    (f / solo).max(1.0)
                } else {
                    1.0
                }
            })
            .collect();
        (out, makespan)
    }

    /// Per-node sorted job sets of an assignment.
    pub fn sets_of(&self, assignment: &[usize]) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = vec![Vec::new(); self.fleet.nodes.len()];
        for (j, &d) in assignment.iter().enumerate() {
            sets[d].push(j as u32);
        }
        sets
    }

    /// Objective value of an assignment under `max_slowdown`.
    pub fn score(&mut self, assignment: &[usize], max_slowdown: f64) -> Score {
        let sets = self.sets_of(assignment);
        let mut makespan = 0.0f64;
        let mut violations = 0usize;
        for (d, set) in sets.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let (slow, node_ms) = self.slowdowns(d, set);
            makespan = makespan.max(node_ms);
            if set.len() > 1 {
                violations += slow
                    .iter()
                    .filter(|&&s| s > max_slowdown * (1.0 + 1e-9))
                    .count();
            }
        }
        Score {
            violations,
            makespan,
        }
    }

    /// Expand an assignment into the full per-job plan.
    pub fn plan(&mut self, policy: &str, assignment: &[usize], max_slowdown: f64) -> SchedulePlan {
        let sets = self.sets_of(assignment);
        let mut placements = vec![
            Placement {
                job: 0,
                node: 0,
                cores: 0,
                m_comp: NumaId::new(0),
                m_comm: NumaId::new(0),
                finish: 0.0,
                slowdown: 1.0,
            };
            assignment.len()
        ];
        let mut makespan = 0.0f64;
        let mut colocated = 0usize;
        let mut violations = 0usize;
        for (d, set) in sets.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let (slow, node_ms) = self.slowdowns(d, set);
            let eval = self.node_eval(d, set);
            makespan = makespan.max(node_ms);
            for (slot, &j) in set.iter().enumerate() {
                let a = eval.allocs[slot];
                placements[j as usize] = Placement {
                    job: j as usize,
                    node: d,
                    cores: a.cores,
                    m_comp: a.comp_numa,
                    m_comm: a.comm_numa,
                    finish: eval.finish[slot],
                    slowdown: slow[slot],
                };
                if set.len() > 1 {
                    colocated += 1;
                    if slow[slot] > max_slowdown * (1.0 + 1e-9) {
                        violations += 1;
                    }
                }
            }
        }
        let throughput = if makespan > 0.0 {
            assignment.len() as f64 / makespan
        } else {
            0.0
        };
        SchedulePlan {
            policy: policy.to_string(),
            placements,
            makespan,
            throughput,
            colocated,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::{ModelRegistry, PhaseProfile};
    use mc_topology::platforms;

    fn fixture() -> (Vec<JobSpec>, Fleet) {
        let reg = ModelRegistry::new(4);
        let p = platforms::henri();
        let fleet = Fleet::build(vec![p.clone(), p], &reg).unwrap();
        let job = |name: &str, comp: f64, comm: f64| JobSpec {
            name: name.into(),
            profile: PhaseProfile {
                compute_bytes: comp * 1e9,
                comm_bytes: comm * 1e9,
                max_cores: 8,
            },
        };
        (
            vec![
                job("a", 30.0, 2.0),
                job("b", 2.0, 12.0),
                job("c", 20.0, 8.0),
            ],
            fleet,
        )
    }

    #[test]
    fn solo_slowdown_is_exactly_one() {
        let (jobs, fleet) = fixture();
        let mut ev = Evaluator::new(&jobs, &fleet);
        // Jobs 0 and 2 share node 0; job 1 has node 1 to itself.
        let plan = ev.plan("round_robin", &[0, 1, 0], 1.5);
        assert_eq!(plan.placements[1].slowdown, 1.0);
        assert_eq!(plan.colocated, 2);
        assert!(plan.placements[0].slowdown >= 1.0);
        assert!(plan.placements[2].slowdown >= 1.0);
        assert!(plan.makespan > 0.0);
        assert!(plan.throughput > 0.0);
    }

    #[test]
    fn memoization_dedupes_identical_sets_across_identical_nodes() {
        let (jobs, fleet) = fixture();
        let mut ev = Evaluator::new(&jobs, &fleet);
        ev.node_eval(0, &[0, 1]);
        let sims = ev.sims();
        ev.node_eval(1, &[0, 1]); // same platform, same set → cache hit
        assert_eq!(ev.sims(), sims);
    }

    #[test]
    fn two_layer_allocation_splits_cores_and_spreads_numa() {
        let (jobs, fleet) = fixture();
        let mut ev = Evaluator::new(&jobs, &fleet);
        let eval = ev.node_eval(0, &[0, 1, 2]);
        let node_cores = fleet.nodes[0].cores;
        for a in &eval.allocs {
            assert!(a.cores >= 1);
            assert!(a.cores <= (node_cores / 3).clamp(1, 8));
        }
        // henri has two NUMA nodes: slots alternate compute homes.
        assert_ne!(eval.allocs[0].comp_numa, eval.allocs[1].comp_numa);
        assert_ne!(eval.allocs[0].comp_numa, eval.allocs[0].comm_numa);
    }

    #[test]
    fn score_orders_by_violations_then_makespan() {
        let a = Score {
            violations: 0,
            makespan: 10.0,
        };
        let b = Score {
            violations: 1,
            makespan: 1.0,
        };
        assert_eq!(a.order(&b), std::cmp::Ordering::Less);
        let c = Score {
            violations: 0,
            makespan: 9.0,
        };
        assert_eq!(c.order(&a), std::cmp::Ordering::Less);
    }
}
