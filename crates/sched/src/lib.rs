//! # mc-sched — contention-aware cluster scheduling simulation
//!
//! The advisor places one job on one empty node; production is a queue
//! of heterogeneous jobs competing for a fleet. This crate closes that
//! gap: a [`JobSpec`] queue (inline phase profiles, synthetic patterns,
//! or recorded replay traces distilled through
//! `mc_replay::phase_profile`), a [`Fleet`] of simulated nodes (one
//! [`Platform`](mc_topology::Platform) plus a calibrated
//! [`ContentionModel`](mc_model::ContentionModel) each, shared through
//! the [`ModelRegistry`](mc_model::ModelRegistry)), and a set of
//! placement [`Policy`] implementations that assign every job to a
//! node.
//!
//! Three policies ship behind the one trait:
//!
//! * [`FirstFit`] — core-counting bin packing, blind to memory
//!   contention;
//! * [`RoundRobin`] — uniform spreading, blind to job heterogeneity;
//! * [`ContentionAware`] — jobs ordered by model-predicted solo
//!   makespan, greedily placed where the predicted cluster makespan
//!   grows least subject to a `--max-slowdown` co-location threshold,
//!   then refined by a seeded annealing search ([`search::anneal`]).
//!
//! Assignments are evaluated by simulating every node's co-located job
//! set on the platform's memory fabric ([`mc_memsim::NodeWorld`]): the
//! same progressive-filling solver the calibrated model was fitted to,
//! generalised from the paper's one-compute-one-comm scenario to an
//! arbitrary multiset of finite streams. The exhaustive
//! [`search::exhaustive`] oracle defines optimality on small cases and
//! property-tests the heuristic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fleet;
pub mod job;
pub mod plan;
pub mod policy;
pub mod report;
pub mod search;

pub use error::SchedError;
pub use fleet::{Fleet, FleetNode};
pub use job::{parse_jobs, JobSpec};
pub use plan::{Evaluator, Placement, SchedulePlan, Score};
pub use policy::{policy_by_name, policy_names, ContentionAware, FirstFit, Policy, RoundRobin};
pub use search::{anneal, exhaustive};
