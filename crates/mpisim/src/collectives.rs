//! Collective operations built from point-to-point messages — the level of
//! abstraction HPC applications actually use, and a stress test for the
//! request machinery. Algorithms are the textbook ones (binomial trees,
//! dissemination barrier, flat gather); all of them progress through the
//! same simulated fabric, so contention from concurrent compute jobs slows
//! them realistically.

use mc_topology::NumaId;

use crate::error::MpiError;
use crate::request::{Rank, RequestId, Tag};
use crate::world::World;

/// Tag namespace reserved for collectives (high bits set to avoid clashing
/// with application tags).
const COLL_TAG_BASE: u32 = 0x4000_0000;

fn coll_tag(op: u32, round: u32) -> Tag {
    Tag(COLL_TAG_BASE | (op << 16) | round)
}

/// Wait for a round's requests, then forget them. Collective-internal
/// request ids never escape to the caller, so keeping their completion
/// records would leak memory linearly in rounds × ranks over a long
/// replay.
fn drain(world: &mut World, reqs: &[RequestId]) -> Result<f64, MpiError> {
    let t = world.wait_all(reqs)?;
    for &r in reqs {
        world.forget_request(r);
    }
    Ok(t)
}

/// Blocking send: post and wait.
pub fn send(
    world: &mut World,
    from: Rank,
    to: Rank,
    numa: NumaId,
    bytes: u64,
    tag: Tag,
) -> Result<f64, MpiError> {
    let req = world.isend(from, to, numa, bytes, tag)?;
    let t = world.wait(req)?;
    world.forget_request(req);
    Ok(t)
}

/// Blocking receive: post and wait.
pub fn recv(
    world: &mut World,
    on: Rank,
    from: Rank,
    numa: NumaId,
    bytes: u64,
    tag: Tag,
) -> Result<f64, MpiError> {
    let req = world.irecv(on, from, numa, bytes, tag)?;
    let t = world.wait(req)?;
    world.forget_request(req);
    Ok(t)
}

/// Simultaneous exchange between two ranks (MPI_Sendrecv on both sides):
/// both directions are posted before any progress, so they share the wire.
/// Returns the completion time.
pub fn exchange(
    world: &mut World,
    a: Rank,
    b: Rank,
    numa: NumaId,
    bytes: u64,
    tag: Tag,
) -> Result<f64, MpiError> {
    let ra = world.irecv(a, b, numa, bytes, tag)?;
    let rb = world.irecv(b, a, numa, bytes, tag)?;
    let sa = world.isend(a, b, numa, bytes, tag)?;
    let sb = world.isend(b, a, numa, bytes, tag)?;
    drain(world, &[ra, rb, sa, sb])
}

/// Dissemination barrier: ⌈log₂ P⌉ rounds; in round `k`, rank `i` sends a
/// token to rank `(i + 2^k) mod P` and receives one from `(i - 2^k) mod P`.
/// Returns the completion time.
pub fn barrier(world: &mut World, numa: NumaId) -> Result<f64, MpiError> {
    let p = world.size();
    let mut round = 0u32;
    let mut dist = 1usize;
    let mut t = world.now();
    while dist < p {
        // One round: everyone exchanges a token with its partners, and the
        // whole round completes before the next one starts (a rank cannot
        // send its round-k+1 token before finishing round k).
        let mut requests: Vec<RequestId> = Vec::with_capacity(2 * p);
        for i in 0..p {
            let to = (i + dist) % p;
            let from = (i + p - dist % p) % p;
            requests.push(world.irecv(i, from, numa, 1, coll_tag(1, round))?);
            requests.push(world.isend(i, to, numa, 1, coll_tag(1, round))?);
        }
        t = drain(world, &requests)?;
        dist <<= 1;
        round += 1;
    }
    Ok(t)
}

/// Binomial-tree broadcast from `root`: ⌈log₂ P⌉ rounds, each doubling the
/// set of ranks holding the payload. Returns the completion time.
pub fn broadcast(world: &mut World, root: Rank, numa: NumaId, bytes: u64) -> Result<f64, MpiError> {
    let p = world.size();
    // Work in a rotated space where the root is rank 0.
    let abs = |v: usize| (v + root) % p;
    let mut have = 1usize; // ranks 0..have (virtual) hold the data
    let mut round = 0u32;
    let mut t = world.now();
    while have < p {
        let senders = have.min(p - have);
        let mut reqs = Vec::with_capacity(2 * senders);
        for s in 0..senders {
            let dst = s + have;
            if dst >= p {
                break;
            }
            reqs.push(world.irecv(abs(dst), abs(s), numa, bytes, coll_tag(2, round))?);
            reqs.push(world.isend(abs(s), abs(dst), numa, bytes, coll_tag(2, round))?);
        }
        t = drain(world, &reqs)?;
        have += senders;
        round += 1;
    }
    Ok(t)
}

/// Flat gather to `root`: every other rank sends its `bytes` to the root.
/// All receives are posted up front (the root's NIC serialises them on its
/// wire). Returns the completion time.
pub fn gather(world: &mut World, root: Rank, numa: NumaId, bytes: u64) -> Result<f64, MpiError> {
    let p = world.size();
    let mut reqs = Vec::with_capacity(2 * (p - 1));
    for r in 0..p {
        if r == root {
            continue;
        }
        reqs.push(world.irecv(root, r, numa, bytes, coll_tag(3, r as u32))?);
        reqs.push(world.isend(r, root, numa, bytes, coll_tag(3, r as u32))?);
    }
    drain(world, &reqs)
}

/// Flat scatter from `root`: the root sends a distinct `bytes`-sized chunk
/// to every other rank. Returns the completion time.
pub fn scatter(world: &mut World, root: Rank, numa: NumaId, bytes: u64) -> Result<f64, MpiError> {
    let p = world.size();
    let mut reqs = Vec::with_capacity(2 * (p - 1));
    for r in 0..p {
        if r == root {
            continue;
        }
        reqs.push(world.irecv(r, root, numa, bytes, coll_tag(4, r as u32))?);
        reqs.push(world.isend(root, r, numa, bytes, coll_tag(4, r as u32))?);
    }
    drain(world, &reqs)
}

/// Ring allgather: `P − 1` rounds; in each round every rank forwards the
/// chunk it received last round to its right neighbour. After the last
/// round every rank holds every chunk. Returns the completion time.
pub fn allgather_ring(
    world: &mut World,
    numa: NumaId,
    bytes_per_rank: u64,
) -> Result<f64, MpiError> {
    let p = world.size();
    let mut t = world.now();
    for round in 0..(p - 1) as u32 {
        let mut reqs = Vec::with_capacity(2 * p);
        for i in 0..p {
            let to = (i + 1) % p;
            let from = (i + p - 1) % p;
            reqs.push(world.irecv(i, from, numa, bytes_per_rank, coll_tag(5, round))?);
            reqs.push(world.isend(i, to, numa, bytes_per_rank, coll_tag(5, round))?);
        }
        t = drain(world, &reqs)?;
    }
    Ok(t)
}

/// Ring allreduce (reduce-scatter + allgather): the classic bandwidth-
/// optimal algorithm, `2·(P − 1)` rounds of `bytes / P` chunks. Returns
/// the completion time.
pub fn allreduce_ring(world: &mut World, numa: NumaId, bytes: u64) -> Result<f64, MpiError> {
    let p = world.size();
    let chunk = (bytes / p as u64).max(1);
    let mut t = world.now();
    for round in 0..(2 * (p - 1)) as u32 {
        let mut reqs = Vec::with_capacity(2 * p);
        for i in 0..p {
            let to = (i + 1) % p;
            let from = (i + p - 1) % p;
            reqs.push(world.irecv(i, from, numa, chunk, coll_tag(6, round))?);
            reqs.push(world.isend(i, to, numa, chunk, coll_tag(6, round))?);
        }
        t = drain(world, &reqs)?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    const MB8: u64 = 8 << 20;

    fn n0() -> NumaId {
        NumaId::new(0)
    }

    #[test]
    fn blocking_send_recv_complete() {
        let mut w = World::pair(&platforms::henri());
        let r = w.irecv(0, 1, n0(), MB8, Tag(0)).unwrap();
        let t_send = send(&mut w, 1, 0, n0(), MB8, Tag(0)).unwrap();
        assert!(w.test(r).unwrap());
        assert!(t_send > 0.0);
    }

    #[test]
    fn exchange_is_slower_than_one_way() {
        let p = platforms::henri();
        let mut w = World::pair(&p);
        let one_way = {
            let r = w.irecv(0, 1, n0(), MB8, Tag(9)).unwrap();
            w.isend(1, 0, n0(), MB8, Tag(9)).unwrap();
            w.wait(r).unwrap() - 0.0
        };
        let mut w2 = World::pair(&p);
        let both = exchange(&mut w2, 0, 1, n0(), MB8, Tag(1)).unwrap();
        assert!(both > 1.3 * one_way, "one_way={one_way}, both={both}");
    }

    #[test]
    fn barrier_completes_on_two_and_more_ranks() {
        for p in [2usize, 3, 5, 8] {
            let mut w = World::homogeneous(&platforms::henri(), p);
            let t = barrier(&mut w, n0()).unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(t > 0.0);
        }
    }

    #[test]
    fn barrier_rounds_grow_logarithmically() {
        let t2 = {
            let mut w = World::homogeneous(&platforms::henri(), 2);
            barrier(&mut w, n0()).unwrap()
        };
        let t8 = {
            let mut w = World::homogeneous(&platforms::henri(), 8);
            barrier(&mut w, n0()).unwrap()
        };
        // 1 round vs 3 rounds: about 3x, certainly < 6x (not linear in P).
        assert!(t8 > 1.5 * t2);
        assert!(t8 < 6.0 * t2, "t2={t2}, t8={t8}");
    }

    #[test]
    fn broadcast_reaches_everyone_in_log_rounds() {
        let p = platforms::henri();
        let t4 = {
            let mut w = World::homogeneous(&p, 4);
            broadcast(&mut w, 0, n0(), MB8).unwrap()
        };
        let t8 = {
            let mut w = World::homogeneous(&p, 8);
            broadcast(&mut w, 0, n0(), MB8).unwrap()
        };
        // log2(8)/log2(4) = 1.5 rounds ratio; allow slack but forbid the
        // linear-ratio 2.0 with margin.
        assert!(t8 / t4 < 1.9, "t4={t4}, t8={t8}");
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let mut w = World::homogeneous(&platforms::henri(), 5);
        let t = broadcast(&mut w, 3, n0(), MB8).unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn gather_serialises_on_the_root_wire() {
        let p = platforms::henri();
        let t3 = {
            let mut w = World::homogeneous(&p, 3);
            gather(&mut w, 0, n0(), MB8).unwrap()
        };
        let t5 = {
            let mut w = World::homogeneous(&p, 5);
            gather(&mut w, 0, n0(), MB8).unwrap()
        };
        // 2 senders vs 4 senders through one wire: about 2x.
        assert!(t5 > 1.6 * t3, "t3={t3}, t5={t5}");
    }

    #[test]
    fn scatter_mirrors_gather() {
        let p = platforms::henri();
        let t_scatter = {
            let mut w = World::homogeneous(&p, 4);
            scatter(&mut w, 0, n0(), MB8).unwrap()
        };
        let t_gather = {
            let mut w = World::homogeneous(&p, 4);
            gather(&mut w, 0, n0(), MB8).unwrap()
        };
        // Same traffic through the root's wire, opposite direction.
        assert!((t_scatter - t_gather).abs() / t_gather < 0.15);
    }

    #[test]
    fn allgather_ring_scales_linearly_in_ranks() {
        let p = platforms::henri();
        let t3 = {
            let mut w = World::homogeneous(&p, 3);
            allgather_ring(&mut w, n0(), MB8).unwrap()
        };
        let t6 = {
            let mut w = World::homogeneous(&p, 6);
            allgather_ring(&mut w, n0(), MB8).unwrap()
        };
        // (P-1) rounds: 5/2 = 2.5x expected.
        assert!((t6 / t3 - 2.5).abs() < 0.5, "t3={t3}, t6={t6}");
    }

    #[test]
    fn allreduce_ring_cost_tracks_message_size_not_rank_count() {
        // Bandwidth-optimal allreduce moves ~2·bytes per rank regardless of
        // P (chunks shrink as rounds grow).
        let p = platforms::henri();
        let t4 = {
            let mut w = World::homogeneous(&p, 4);
            allreduce_ring(&mut w, n0(), 64 << 20).unwrap()
        };
        let t8 = {
            let mut w = World::homogeneous(&p, 8);
            allreduce_ring(&mut w, n0(), 64 << 20).unwrap()
        };
        assert!(
            t8 < 1.4 * t4,
            "ring allreduce should be nearly P-independent: t4={t4}, t8={t8}"
        );
    }

    #[test]
    fn allreduce_costs_about_twice_an_allgather() {
        let p = platforms::henri();
        let bytes = 64u64 << 20;
        let mut w = World::homogeneous(&p, 4);
        let t_ag = allgather_ring(&mut w, n0(), bytes / 4).unwrap();
        let mut w = World::homogeneous(&p, 4);
        let t_ar = allreduce_ring(&mut w, n0(), bytes).unwrap();
        assert!((t_ar / t_ag - 2.0).abs() < 0.3, "ag={t_ag}, ar={t_ar}");
    }

    #[test]
    fn collectives_slow_down_under_memory_contention() {
        let p = platforms::henri();
        let quiet = {
            let mut w = World::pair(&p);
            broadcast(&mut w, 0, n0(), 64 << 20).unwrap()
        };
        let contended = {
            let mut w = World::pair(&p);
            // Saturate the receiver's memory controller.
            w.start_compute(1, n0(), 17, 8 << 30).unwrap();
            broadcast(&mut w, 0, n0(), 64 << 20).unwrap()
        };
        assert!(
            contended > 1.5 * quiet,
            "quiet={quiet}, contended={contended}"
        );
    }
}
