//! Requests, ranks and tags — the MPI-flavoured vocabulary of the
//! simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process rank. The paper's benchmark uses two machines (one receiver,
/// one sender); the simulator supports any number ≥ 2.
pub type Rank = usize;

/// A message tag. Matching follows MPI semantics: a receive matches a send
/// with the same `(source, tag)`, where the receive's tag may be
/// [`Tag::ANY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tag(pub u32);

impl Tag {
    /// Wildcard tag for receives (MPI_ANY_TAG).
    pub const ANY: Tag = Tag(u32::MAX);

    /// Does a posted receive tag accept an incoming tag?
    pub fn matches(self, incoming: Tag) -> bool {
        self == Tag::ANY || self == incoming
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Tag::ANY {
            write!(f, "ANY")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Handle to a pending communication request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Handle to a compute job started with
/// [`crate::world::World::start_compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Completion status of a request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RequestStatus {
    /// Posted, not yet matched with its peer operation.
    Pending,
    /// Matched; the transfer is in flight.
    InFlight,
    /// Completed at the stored simulation time.
    Complete(f64),
    /// Failed: the matched send was larger than the receive buffer
    /// (MPI_ERR_TRUNCATE).
    Truncated,
}

impl RequestStatus {
    /// Is the request finished (successfully or not)?
    pub fn is_done(self) -> bool {
        matches!(self, RequestStatus::Complete(_) | RequestStatus::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_tag_matches_everything() {
        assert!(Tag::ANY.matches(Tag(0)));
        assert!(Tag::ANY.matches(Tag(12345)));
    }

    #[test]
    fn concrete_tag_matches_only_itself() {
        assert!(Tag(3).matches(Tag(3)));
        assert!(!Tag(3).matches(Tag(4)));
    }

    #[test]
    fn status_done() {
        assert!(!RequestStatus::Pending.is_done());
        assert!(!RequestStatus::InFlight.is_done());
        assert!(RequestStatus::Complete(1.0).is_done());
        assert!(RequestStatus::Truncated.is_done());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tag::ANY.to_string(), "ANY");
        assert_eq!(Tag(7).to_string(), "7");
        assert_eq!(RequestId(3).to_string(), "req3");
        assert_eq!(JobId(9).to_string(), "job9");
    }
}
