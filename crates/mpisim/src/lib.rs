//! # mc-mpisim — an MPI-like message layer over the simulated fabric
//!
//! The substitute for MadMPI (the MPI interface of NewMadeleine) in the
//! paper's setup: non-blocking point-to-point messaging between simulated
//! nodes with MPI tag-matching semantics, rendezvous for large messages,
//! and a request-level event loop that co-simulates transfers with compute
//! jobs over each node's `mc-memsim` fabric — so memory contention on
//! either endpoint slows the wire transfer, which is precisely the
//! phenomenon the paper models.
//!
//! ```
//! use mc_mpisim::{Tag, World};
//! use mc_topology::{platforms, NumaId};
//!
//! let mut world = World::pair(&platforms::henri());
//! let numa = NumaId::new(0);
//! // Rank 0 receives a 64 MiB message from rank 1 while 17 of its cores
//! // stream to the same NUMA node:
//! world.start_compute(0, numa, 17, 1 << 30).unwrap();
//! let r = world.irecv(0, 1, numa, 64 << 20, Tag(0)).unwrap();
//! world.isend(1, 0, numa, 64 << 20, Tag(0)).unwrap();
//! let done = world.wait(r).unwrap();
//! assert!(done > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collectives;
pub mod error;
pub mod request;
pub mod world;

pub use collectives::{
    allgather_ring, allreduce_ring, barrier, broadcast, exchange, gather, recv, scatter, send,
};
pub use error::MpiError;
pub use request::{JobId, Rank, RequestId, RequestStatus, Tag};
pub use world::{CommMode, JobRecord, TransferRecord, World, WorldSolverStats};
