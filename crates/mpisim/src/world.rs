//! The simulated MPI world: ranks, request matching, and a request-level
//! event loop co-simulating transfers and compute jobs over the memory
//! fabrics of the participating nodes.
//!
//! This is the substitute for MadMPI/NewMadeleine in the paper's setup:
//! non-blocking sends/receives progressed by a dedicated communication
//! core, with large messages moved by rendezvous + RDMA. Each node owns an
//! `mc-memsim` fabric; the instantaneous rate of a transfer is the minimum
//! of what the sender-side and receiver-side fabrics grant its DMA flows,
//! so memory contention on either end slows the wire transfer — exactly the
//! phenomenon the paper models.

use std::collections::{BTreeMap, HashMap};

use mc_memsim::delta::{ActiveSet, DeltaSolver, DeltaStats};
use mc_memsim::fabric::{Fabric, StreamSpec};
use mc_netsim::protocol::ProtocolConfig;
use mc_topology::{NumaId, Platform, PoolId};

use crate::error::MpiError;
use crate::request::{JobId, Rank, RequestId, RequestStatus, Tag};

/// An unmatched posted operation (send or receive).
#[derive(Debug, Clone)]
struct PendingOp {
    req: RequestId,
    /// Rank that posted the operation.
    rank: Rank,
    tag: Tag,
    numa: NumaId,
    bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TransferPhase {
    /// Handshake until the stored absolute time.
    Pre(f64),
    /// Payload streaming; bytes left.
    Streaming(f64),
    /// Wrap-up until the stored absolute time.
    Post(f64),
}

#[derive(Debug, Clone)]
struct Transfer {
    send_req: RequestId,
    recv_req: RequestId,
    history_idx: usize,
    src: Rank,
    dst: Rank,
    src_numa: NumaId,
    dst_numa: NumaId,
    phase: TransferPhase,
    payload: f64,
    post_len: f64,
}

#[derive(Debug, Clone)]
struct JobState {
    rank: Rank,
    numa: NumaId,
    cores: usize,
    bytes_left_per_core: f64,
    done_at: Option<f64>,
    history_idx: usize,
}

/// Sentinel `history_idx` when history recording is off.
const NO_HISTORY: usize = usize::MAX;

/// How matched sends and receives move their payload between ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CommMode {
    /// Classic messaging: rendezvous + RDMA through the NIC, payload
    /// moved by the DMA engines of both endpoints.
    #[default]
    Messages,
    /// Message-free: the sender's cores push the payload into a shared
    /// CXL.mem pool and the receiver's cores pull it out. No NIC, no
    /// rendezvous round trip — but also no DMA arbitration floor, so
    /// the streams take whatever max-min share the memory fabric grants
    /// the CPU class.
    Cxl,
}

/// The per-endpoint streams a transfer occupies: `(sender side,
/// receiver side)` as seen by each endpoint's own fabric.
fn transfer_specs(
    mode: CommMode,
    pool: Option<PoolId>,
    src_numa: NumaId,
    dst_numa: NumaId,
) -> (StreamSpec, StreamSpec) {
    match mode {
        CommMode::Messages => (
            // Sender-side NIC read of the source buffer.
            StreamSpec::DmaRecv { numa: src_numa },
            StreamSpec::DmaRecv { numa: dst_numa },
        ),
        CommMode::Cxl => {
            let pool = pool.expect("CXL comm mode requires a pool (checked in set_comm_mode)");
            (
                StreamSpec::CxlWrite {
                    numa: src_numa,
                    pool,
                },
                StreamSpec::CxlRead {
                    numa: dst_numa,
                    pool,
                },
            )
        }
    }
}

/// A completed (or in-flight) transfer, for post-mortem analysis and
/// Gantt rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Payload bytes.
    pub bytes: f64,
    /// Time the send and receive were matched.
    pub matched_at: f64,
    /// Completion time (`None` while in flight).
    pub finished_at: Option<f64>,
}

/// A compute job's execution interval.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Rank the job ran on.
    pub rank: Rank,
    /// Cores used.
    pub cores: usize,
    /// Start time.
    pub started_at: f64,
    /// Completion time (`None` while running).
    pub finished_at: Option<f64>,
}

/// Counters of the world's incremental rate solving — the evidence that
/// the delta solver removes progressive-filling work. A from-scratch
/// solver (the pre-delta implementation) would run the solver once per
/// [`WorldSolverStats::node_steps`]; the delta path ran it only
/// [`DeltaStats::full_solves`] times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldSolverStats {
    /// `(node, step)` rate evaluations of nodes with active streams —
    /// exactly the full solves a non-incremental implementation performs.
    pub node_steps: u64,
    /// What the delta solver actually did (full solves, cache hits).
    pub delta: DeltaStats,
    /// Stream add/remove transitions across all nodes (phase boundaries).
    pub transitions: u64,
}

impl WorldSolverStats {
    /// How many times fewer progressive-filling runs the delta path
    /// performed than a from-scratch solver would have
    /// (`node_steps / full_solves`; `inf` when nothing was solved).
    pub fn reduction(&self) -> f64 {
        if self.delta.full_solves == 0 {
            f64::INFINITY
        } else {
            self.node_steps as f64 / self.delta.full_solves as f64
        }
    }
}

/// The simulated multi-node world.
///
/// All nodes are identical ([`World::homogeneous`]), so one [`Fabric`]
/// and one [`ProtocolConfig`] are shared by every rank, and one
/// [`DeltaSolver`] state cache answers rate queries for all of them —
/// a machine state solved on one node is a cache hit on all others.
pub struct World {
    fabric: Fabric,
    protocol: ProtocolConfig,
    /// How payloads move between ranks (NIC messaging or CXL pool).
    comm_mode: CommMode,
    /// The shared pool used in [`CommMode::Cxl`] (the topology's first),
    /// `None` when the platform declares none.
    cxl_pool: Option<PoolId>,
    n: usize,
    time: f64,
    next_id: u64,
    statuses: BTreeMap<RequestId, RequestStatus>,
    jobs: BTreeMap<JobId, JobState>,
    /// Jobs still streaming, compacted on completion.
    active_jobs: Vec<JobId>,
    transfers: Vec<Transfer>,
    /// Unmatched operations keyed by `(posting rank, peer rank)`;
    /// matching only ever pairs identical keys (mirrored), so per-key
    /// FIFO order preserves MPI's non-overtaking guarantee.
    pending_sends: HashMap<(Rank, Rank), Vec<PendingOp>>,
    pending_recvs: HashMap<(Rank, Rank), Vec<PendingOp>>,
    transfer_history: Vec<TransferRecord>,
    job_history: Vec<JobRecord>,
    record_history: bool,
    /// Per-node active stream multisets, updated at phase boundaries.
    node_sets: Vec<ActiveSet>,
    solver: DeltaSolver,
    /// Epoch stamps backing [`WorldSolverStats::node_steps`].
    node_stamp: Vec<u64>,
    epoch: u64,
    node_steps: u64,
    /// When false, every stream is granted the bandwidth it would get
    /// *alone* on its fabric (each stream solved in isolation). This is
    /// the uncontended baseline the replay engine divides by to obtain a
    /// contention-slowdown factor.
    contended: bool,
}

const EPS: f64 = 1e-12;
const GB: f64 = 1e9;

impl World {
    /// Build a world of `n` identical nodes of the given platform
    /// (`n >= 2`).
    pub fn homogeneous(platform: &Platform, n: usize) -> Self {
        assert!(n >= 2, "a world needs at least two nodes");
        let fabric = Fabric::new(platform);
        let protocol = ProtocolConfig::for_tech(platform.topology.nic.tech);
        let cxl_pool = platform.topology.cxl_pools.first().map(|p| p.id);
        World {
            fabric,
            protocol,
            comm_mode: CommMode::default(),
            cxl_pool,
            n,
            time: 0.0,
            next_id: 0,
            statuses: BTreeMap::new(),
            jobs: BTreeMap::new(),
            active_jobs: Vec::new(),
            transfers: Vec::new(),
            pending_sends: HashMap::new(),
            pending_recvs: HashMap::new(),
            transfer_history: Vec::new(),
            job_history: Vec::new(),
            record_history: true,
            node_sets: (0..n).map(|_| ActiveSet::new()).collect(),
            solver: DeltaSolver::new(),
            node_stamp: vec![0; n],
            epoch: 0,
            node_steps: 0,
            contended: true,
        }
    }

    /// The classic two-node setup of the paper's benchmark.
    pub fn pair(platform: &Platform) -> Self {
        World::homogeneous(platform, 2)
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Solver work performed so far: what a from-scratch implementation
    /// would have solved versus what the delta solver actually ran.
    pub fn solver_stats(&self) -> WorldSolverStats {
        WorldSolverStats {
            node_steps: self.node_steps,
            delta: self.solver.stats(),
            transitions: self.node_sets.iter().map(ActiveSet::transitions).sum(),
        }
    }

    /// Enable or disable history recording
    /// ([`transfer_history`](World::transfer_history) /
    /// [`job_history`](World::job_history)). On by default; long replays
    /// turn it off so memory stays bounded by the number of *active*
    /// entities instead of growing with every event ever simulated.
    pub fn set_record_history(&mut self, record: bool) {
        self.record_history = record;
    }

    /// Drop a completed (or truncated) request's status so the request
    /// table does not grow with the total number of messages ever sent.
    /// Returns whether the status was dropped (`false` while the request
    /// is still pending or in flight — those must stay tracked).
    pub fn forget_request(&mut self, req: RequestId) -> bool {
        match self.statuses.get(&req) {
            Some(status) if status.is_done() => {
                self.statuses.remove(&req);
                true
            }
            _ => false,
        }
    }

    /// Drop a completed job's state, the compute counterpart of
    /// [`forget_request`](World::forget_request). Returns whether the job
    /// was dropped (`false` while it is still running).
    pub fn forget_job(&mut self, job: JobId) -> bool {
        match self.jobs.get(&job) {
            Some(state) if state.done_at.is_some() => {
                self.jobs.remove(&job);
                true
            }
            _ => false,
        }
    }

    /// Enable or disable memory/wire contention. With contention off the
    /// world becomes the *uncontended baseline*: each stream progresses
    /// at the bandwidth its fabric would grant it alone, as if every
    /// transfer and every compute job had the machine to itself. Event
    /// ordering and matching semantics are unchanged.
    pub fn set_contended(&mut self, contended: bool) {
        self.contended = contended;
    }

    /// Is contention being simulated (true unless
    /// [`set_contended`](World::set_contended)`(false)` was called)?
    pub fn contended(&self) -> bool {
        self.contended
    }

    /// Select how payloads move between ranks. [`CommMode::Cxl`] lowers
    /// every matched send/receive to a core-issued write/read pair
    /// against the platform's first CXL.mem pool instead of NIC DMA
    /// streams, and replaces the rendezvous protocol with an always-
    /// eager one (the receiver pulls straight from the pool, so there
    /// is no RTS/CTS round trip); the pre/post latency becomes the
    /// pool's access latency. Fails with [`MpiError::NoCxlPool`] when
    /// the platform declares no pool.
    ///
    /// Must be called before any traffic is posted: transfers in flight
    /// keep the stream specs they started with.
    pub fn set_comm_mode(&mut self, mode: CommMode) -> Result<(), MpiError> {
        assert!(
            self.transfers.is_empty(),
            "comm mode must be set before any transfer is matched"
        );
        if mode == CommMode::Cxl && self.cxl_pool.is_none() {
            return Err(MpiError::NoCxlPool(
                self.fabric.platform().topology.name.clone(),
            ));
        }
        self.comm_mode = mode;
        self.protocol = match mode {
            CommMode::Messages => {
                ProtocolConfig::for_tech(self.fabric.platform().topology.nic.tech)
            }
            CommMode::Cxl => {
                let pool = &self.fabric.platform().topology.cxl_pools[0];
                ProtocolConfig {
                    eager_threshold: u64::MAX,
                    sw_overhead: self.protocol.sw_overhead,
                    wire_latency: pool.latency,
                }
            }
        };
        Ok(())
    }

    /// The active communication mode.
    pub fn comm_mode(&self) -> CommMode {
        self.comm_mode
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Every transfer matched so far (completed ones carry their finish
    /// time), in match order.
    pub fn transfer_history(&self) -> &[TransferRecord] {
        &self.transfer_history
    }

    /// Every compute job started so far, in start order.
    pub fn job_history(&self) -> &[JobRecord] {
        &self.job_history
    }

    fn fresh_request(&mut self) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.statuses.insert(id, RequestStatus::Pending);
        id
    }

    fn check_rank(&self, r: Rank) -> Result<(), MpiError> {
        if r < self.size() {
            Ok(())
        } else {
            Err(MpiError::InvalidRank(r))
        }
    }

    /// Post a non-blocking send of `bytes` from `from`'s buffer on
    /// `numa` to rank `to`.
    pub fn isend(
        &mut self,
        from: Rank,
        to: Rank,
        numa: NumaId,
        bytes: u64,
        tag: Tag,
    ) -> Result<RequestId, MpiError> {
        self.check_rank(from)?;
        self.check_rank(to)?;
        if from == to {
            return Err(MpiError::SelfMessage(from));
        }
        let req = self.fresh_request();
        let op = PendingOp {
            req,
            rank: from,
            tag,
            numa,
            bytes,
        };
        // MPI matching is non-overtaking: match against the earliest
        // compatible posted receive. Receives posted by `to` for peer
        // `from` all live under one key, in post order.
        let queue = self.pending_recvs.entry((to, from)).or_default();
        if let Some(pos) = queue.iter().position(|r| r.tag.matches(tag)) {
            let recv = queue.remove(pos);
            self.start_transfer(op, recv);
        } else {
            self.pending_sends.entry((from, to)).or_default().push(op);
        }
        Ok(req)
    }

    /// Post a non-blocking receive on rank `on` for a message from `from`
    /// into a buffer of `max_bytes` on `numa`.
    pub fn irecv(
        &mut self,
        on: Rank,
        from: Rank,
        numa: NumaId,
        max_bytes: u64,
        tag: Tag,
    ) -> Result<RequestId, MpiError> {
        self.check_rank(on)?;
        self.check_rank(from)?;
        if on == from {
            return Err(MpiError::SelfMessage(on));
        }
        let req = self.fresh_request();
        let op = PendingOp {
            req,
            rank: on,
            tag,
            numa,
            bytes: max_bytes,
        };
        let queue = self.pending_sends.entry((from, on)).or_default();
        if let Some(pos) = queue.iter().position(|s| tag.matches(s.tag)) {
            let send = queue.remove(pos);
            self.start_transfer(send, op);
        } else {
            self.pending_recvs.entry((on, from)).or_default().push(op);
        }
        Ok(req)
    }

    fn start_transfer(&mut self, send: PendingOp, recv: PendingOp) {
        if send.bytes > recv.bytes {
            self.statuses.insert(send.req, RequestStatus::Truncated);
            self.statuses.insert(recv.req, RequestStatus::Truncated);
            return;
        }
        let plan = self.protocol.plan(send.bytes);
        self.statuses.insert(send.req, RequestStatus::InFlight);
        self.statuses.insert(recv.req, RequestStatus::InFlight);
        let history_idx = if self.record_history {
            self.transfer_history.push(TransferRecord {
                src: send.rank,
                dst: recv.rank,
                bytes: send.bytes as f64,
                matched_at: self.time,
                finished_at: None,
            });
            self.transfer_history.len() - 1
        } else {
            NO_HISTORY
        };
        self.transfers.push(Transfer {
            send_req: send.req,
            recv_req: recv.req,
            history_idx,
            src: send.rank,
            dst: recv.rank,
            src_numa: send.numa,
            dst_numa: recv.numa,
            phase: TransferPhase::Pre(self.time + plan.pre_transfer),
            payload: send.bytes as f64,
            post_len: plan.post_transfer,
        });
    }

    /// Start a compute job: `cores` cores of rank `rank` each streaming
    /// `bytes_per_core` bytes of non-temporal stores to `numa`.
    pub fn start_compute(
        &mut self,
        rank: Rank,
        numa: NumaId,
        cores: usize,
        bytes_per_core: u64,
    ) -> Result<JobId, MpiError> {
        self.check_rank(rank)?;
        assert!(cores > 0, "a compute job needs at least one core");
        let id = JobId(self.next_id);
        self.next_id += 1;
        let done_at = if bytes_per_core == 0 {
            Some(self.time)
        } else {
            None
        };
        let history_idx = if self.record_history {
            self.job_history.push(JobRecord {
                rank,
                cores,
                started_at: self.time,
                finished_at: done_at,
            });
            self.job_history.len() - 1
        } else {
            NO_HISTORY
        };
        if done_at.is_none() {
            self.active_jobs.push(id);
            for _ in 0..cores {
                self.node_sets[rank].add(StreamSpec::CpuWrite { numa });
            }
        }
        self.jobs.insert(
            id,
            JobState {
                rank,
                numa,
                cores,
                bytes_left_per_core: bytes_per_core as f64,
                done_at,
                history_idx,
            },
        );
        Ok(id)
    }

    /// Status of a request.
    pub fn status(&self, req: RequestId) -> Result<RequestStatus, MpiError> {
        self.statuses
            .get(&req)
            .copied()
            .ok_or(MpiError::UnknownRequest(req))
    }

    /// Non-blocking completion test (makes no progress, like a pure
    /// `MPI_Test` against an already-progressed engine).
    pub fn test(&self, req: RequestId) -> Result<bool, MpiError> {
        Ok(self.status(req)?.is_done())
    }

    /// Advance simulated time until `req` completes; returns the completion
    /// time. Errors on truncation or deadlock.
    pub fn wait(&mut self, req: RequestId) -> Result<f64, MpiError> {
        loop {
            match self.status(req)? {
                RequestStatus::Complete(t) => return Ok(t),
                RequestStatus::Truncated => return Err(MpiError::Truncated(req)),
                _ => {
                    if !self.step() {
                        return Err(MpiError::Deadlock(req));
                    }
                }
            }
        }
    }

    /// Wait for all the given requests.
    pub fn wait_all(&mut self, reqs: &[RequestId]) -> Result<f64, MpiError> {
        let mut last = self.time;
        for &r in reqs {
            last = last.max(self.wait(r)?);
        }
        Ok(last)
    }

    /// Advance simulated time until job completion; returns that time.
    pub fn wait_job(&mut self, job: JobId) -> Result<f64, MpiError> {
        loop {
            let done = self
                .jobs
                .get(&job)
                .ok_or(MpiError::UnknownJob(job))?
                .done_at;
            if let Some(t) = done {
                return Ok(t);
            }
            if !self.step() {
                // A compute job can always progress unless its rate is
                // zero, which the fabric never produces for CPU streams
                // with positive demand.
                return Err(MpiError::UnknownJob(job));
            }
        }
    }

    /// Status of a compute job: `Some(t)` once it completed at time `t`,
    /// `None` while it is still running. The non-blocking counterpart of
    /// [`wait_job`](World::wait_job), used by replay engines that must
    /// poll many ranks without committing to a wait order.
    pub fn job_status(&self, job: JobId) -> Result<Option<f64>, MpiError> {
        self.jobs
            .get(&job)
            .map(|j| j.done_at)
            .ok_or(MpiError::UnknownJob(job))
    }

    /// Advance simulated time to the next event (a transfer phase change,
    /// a payload draining, a job finishing). Returns false when nothing
    /// can progress — no in-flight transfer and no running job. This is
    /// the finest-grained public progress primitive: callers that
    /// interleave posting with time (the trace replayer) call it in a
    /// loop, re-examining completions after every step.
    pub fn poll(&mut self) -> bool {
        self.step()
    }

    /// Advance by `dt` seconds of simulated time, processing events.
    pub fn advance_by(&mut self, dt: f64) {
        let deadline = self.time + dt;
        while self.time < deadline - EPS {
            if !self.step_until(deadline) {
                self.time = deadline;
                break;
            }
        }
    }

    /// The rate one stream of `spec` gets on `node` right now. Contended:
    /// the node's max-min solution, reused until the node's stream set
    /// changes and answered from the shared state cache across nodes.
    /// Baseline: the stream's memoized alone bandwidth.
    fn stream_rate(&mut self, node: Rank, spec: StreamSpec) -> f64 {
        if !self.contended {
            // Baseline mode: each stream solved in isolation gets its
            // alone bandwidth — no sharing anywhere.
            return self.solver.alone_rate(&self.fabric, spec);
        }
        if self.node_stamp[node] != self.epoch {
            self.node_stamp[node] = self.epoch;
            self.node_steps += 1;
        }
        let set = &mut self.node_sets[node];
        let solution = match set.solution() {
            Some(sol) => sol.clone(),
            None => self.solver.solve(&self.fabric, set),
        };
        solution
            .rate_of(spec)
            .expect("an active entity's spec is in its node's stream set")
    }

    /// Effective rate of each active entity: per-core job rates (parallel
    /// to `active_jobs`) and transfer rates (min of both endpoints,
    /// parallel to `transfers`; non-streaming phases get 0).
    fn effective_rates(&mut self) -> (Vec<f64>, Vec<f64>) {
        self.epoch += 1;
        let mut job_rates = Vec::with_capacity(self.active_jobs.len());
        for i in 0..self.active_jobs.len() {
            let jid = self.active_jobs[i];
            let job = &self.jobs[&jid];
            let (rank, spec) = (job.rank, StreamSpec::CpuWrite { numa: job.numa });
            // All cores of a job are identical; the rate of one core
            // stands for all of them (equal by max-min symmetry).
            job_rates.push(self.stream_rate(rank, spec));
        }
        let mut transfer_rates = Vec::with_capacity(self.transfers.len());
        for ti in 0..self.transfers.len() {
            let tr = &self.transfers[ti];
            if !matches!(tr.phase, TransferPhase::Streaming(_)) {
                transfer_rates.push(0.0);
                continue;
            }
            let (src, dst) = (tr.src, tr.dst);
            let (src_spec, dst_spec) =
                transfer_specs(self.comm_mode, self.cxl_pool, tr.src_numa, tr.dst_numa);
            let rate_in = self.stream_rate(dst, dst_spec);
            let rate_out = self.stream_rate(src, src_spec);
            transfer_rates.push(rate_in.min(rate_out));
        }
        (job_rates, transfer_rates)
    }

    fn step(&mut self) -> bool {
        self.step_until(f64::INFINITY)
    }

    /// Advance to the next event (bounded by `deadline`). Returns false if
    /// nothing can progress.
    fn step_until(&mut self, deadline: f64) -> bool {
        if self.transfers.is_empty() && self.active_jobs.is_empty() {
            return false;
        }
        let (job_rates, transfer_rates) = self.effective_rates();

        // Earliest next event.
        let mut next = deadline;
        for (i, &jid) in self.active_jobs.iter().enumerate() {
            let job = &self.jobs[&jid];
            let rate = job_rates[i] * GB;
            if rate > 0.0 {
                next = next.min(self.time + job.bytes_left_per_core / rate);
            }
        }
        for (ti, tr) in self.transfers.iter().enumerate() {
            match tr.phase {
                TransferPhase::Pre(t) | TransferPhase::Post(t) => next = next.min(t),
                TransferPhase::Streaming(bytes) => {
                    let rate = transfer_rates[ti] * GB;
                    if rate > 0.0 {
                        next = next.min(self.time + bytes / rate);
                    }
                }
            }
        }
        if !next.is_finite() || next <= self.time + EPS {
            // Either nothing bounded progress, or we are already at the
            // event instant; nudge by processing transitions directly.
            next = (self.time + EPS).max(next.min(deadline));
            if !next.is_finite() {
                return false;
            }
        }
        let dt = next - self.time;

        // Integrate.
        for (i, &jid) in self.active_jobs.iter().enumerate() {
            let job = self.jobs.get_mut(&jid).expect("active job exists");
            let rate = job_rates[i] * GB;
            job.bytes_left_per_core = (job.bytes_left_per_core - rate * dt).max(0.0);
        }
        for (ti, tr) in self.transfers.iter_mut().enumerate() {
            if let TransferPhase::Streaming(ref mut bytes) = tr.phase {
                let rate = transfer_rates[ti] * GB;
                *bytes = (*bytes - rate * dt).max(0.0);
            }
        }
        self.time = next;

        // Transitions. Each one updates the affected nodes' stream sets,
        // which invalidates only those nodes' cached solutions — the
        // delta solver re-solves (or cache-hits) exactly where the
        // active multiset changed.
        let now = self.time;
        let (comm_mode, cxl_pool) = (self.comm_mode, self.cxl_pool);
        let Self {
            active_jobs,
            jobs,
            node_sets,
            job_history,
            transfers,
            transfer_history,
            ..
        } = self;
        active_jobs.retain(|&jid| {
            let job = jobs.get_mut(&jid).expect("active job exists");
            if job.bytes_left_per_core > 1.0 {
                return true;
            }
            job.done_at = Some(now);
            if job.history_idx != NO_HISTORY {
                job_history[job.history_idx].finished_at = Some(now);
            }
            for _ in 0..job.cores {
                node_sets[job.rank].remove(StreamSpec::CpuWrite { numa: job.numa });
            }
            false
        });
        let mut finished: Vec<(RequestId, RequestId)> = Vec::new();
        for tr in transfers.iter_mut() {
            match tr.phase {
                TransferPhase::Pre(t) if t <= now + EPS => {
                    tr.phase = TransferPhase::Streaming(tr.payload);
                    let (src_spec, dst_spec) =
                        transfer_specs(comm_mode, cxl_pool, tr.src_numa, tr.dst_numa);
                    node_sets[tr.dst].add(dst_spec);
                    node_sets[tr.src].add(src_spec);
                }
                TransferPhase::Streaming(bytes) if bytes <= 1.0 => {
                    tr.phase = TransferPhase::Post(now + tr.post_len);
                    let (src_spec, dst_spec) =
                        transfer_specs(comm_mode, cxl_pool, tr.src_numa, tr.dst_numa);
                    node_sets[tr.dst].remove(dst_spec);
                    node_sets[tr.src].remove(src_spec);
                }
                TransferPhase::Post(t) if t <= now + EPS => {
                    finished.push((tr.send_req, tr.recv_req));
                    if tr.history_idx != NO_HISTORY {
                        transfer_history[tr.history_idx].finished_at = Some(now);
                    }
                }
                _ => {}
            }
        }
        if !finished.is_empty() {
            self.transfers
                .retain(|tr| !finished.iter().any(|&(s, _)| s == tr.send_req));
            for (s, r) in finished {
                self.statuses.insert(s, RequestStatus::Complete(now));
                self.statuses.insert(r, RequestStatus::Complete(now));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    const MB64: u64 = 64 << 20;

    fn n0() -> NumaId {
        NumaId::new(0)
    }

    #[test]
    fn simple_send_recv_completes() {
        let mut w = World::pair(&platforms::henri());
        let r = w.irecv(0, 1, n0(), MB64, Tag(1)).unwrap();
        let s = w.isend(1, 0, n0(), MB64, Tag(1)).unwrap();
        let t = w.wait_all(&[r, s]).unwrap();
        // 64 MiB at ~11.3 GB/s ≈ 5.9 ms.
        assert!((0.004..0.010).contains(&t), "t = {t}");
        assert!(w.test(r).unwrap());
    }

    #[test]
    fn matching_respects_tags() {
        let mut w = World::pair(&platforms::henri());
        let r_tag2 = w.irecv(0, 1, n0(), MB64, Tag(2)).unwrap();
        let s_tag1 = w.isend(1, 0, n0(), MB64, Tag(1)).unwrap();
        // Tag 1 send must not match the tag-2 receive.
        assert!(!w.test(r_tag2).unwrap());
        assert!(!w.test(s_tag1).unwrap());
        let r_tag1 = w.irecv(0, 1, n0(), MB64, Tag(1)).unwrap();
        w.wait(r_tag1).unwrap();
        assert!(w.test(s_tag1).unwrap());
    }

    #[test]
    fn any_tag_receives_anything() {
        let mut w = World::pair(&platforms::henri());
        let r = w.irecv(0, 1, n0(), MB64, Tag::ANY).unwrap();
        let s = w.isend(1, 0, n0(), MB64, Tag(77)).unwrap();
        w.wait_all(&[r, s]).unwrap();
    }

    #[test]
    fn truncation_is_reported() {
        let mut w = World::pair(&platforms::henri());
        let r = w.irecv(0, 1, n0(), 1024, Tag(0)).unwrap();
        let _s = w.isend(1, 0, n0(), 2048, Tag(0)).unwrap();
        assert_eq!(w.wait(r), Err(MpiError::Truncated(r)));
    }

    #[test]
    fn deadlock_detected_on_unmatched_wait() {
        let mut w = World::pair(&platforms::henri());
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        assert_eq!(w.wait(r), Err(MpiError::Deadlock(r)));
    }

    #[test]
    fn self_message_rejected() {
        let mut w = World::pair(&platforms::henri());
        assert_eq!(
            w.isend(0, 0, n0(), 1, Tag(0)).unwrap_err(),
            MpiError::SelfMessage(0)
        );
    }

    #[test]
    fn invalid_rank_rejected() {
        let mut w = World::pair(&platforms::henri());
        assert_eq!(
            w.irecv(0, 5, n0(), 1, Tag(0)).unwrap_err(),
            MpiError::InvalidRank(5)
        );
    }

    #[test]
    fn compute_job_duration_matches_nominal_bandwidth() {
        let p = platforms::henri();
        let mut w = World::pair(&p);
        let per_core = 512u64 << 20; // 512 MiB/core
        let job = w.start_compute(0, n0(), 4, per_core).unwrap();
        let t = w.wait_job(job).unwrap();
        let expected = per_core as f64 / (5.6e9);
        assert!(
            (t - expected).abs() / expected < 0.01,
            "t={t}, exp={expected}"
        );
    }

    #[test]
    fn overlap_on_same_numa_slows_the_transfer() {
        let p = platforms::henri();
        // Alone:
        let mut w = World::pair(&p);
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let alone = w.wait(r).unwrap();
        // With 17 cores hammering the same node on the receiver:
        let mut w = World::pair(&p);
        w.start_compute(0, n0(), 17, 8 << 30).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let contended = w.wait(r).unwrap();
        assert!(
            contended > 2.0 * alone,
            "alone={alone}, contended={contended}"
        );
    }

    #[test]
    fn overlap_on_other_numa_leaves_transfer_untouched() {
        let p = platforms::henri_subnuma();
        let mut w = World::pair(&p);
        let r = w.irecv(0, 1, NumaId::new(1), MB64, Tag(0)).unwrap();
        w.isend(1, 0, NumaId::new(1), MB64, Tag(0)).unwrap();
        let alone = w.wait(r).unwrap();

        // Few enough cores that the shared socket mesh stays unsaturated.
        let mut w = World::pair(&p);
        w.start_compute(0, NumaId::new(0), 3, 8 << 30).unwrap();
        let r = w.irecv(0, 1, NumaId::new(1), MB64, Tag(0)).unwrap();
        w.isend(1, 0, NumaId::new(1), MB64, Tag(0)).unwrap();
        let with_compute = w.wait(r).unwrap();
        assert!(
            (with_compute - alone).abs() / alone < 0.02,
            "alone={alone}, with={with_compute}"
        );
    }

    #[test]
    fn bidirectional_traffic_shares_the_wire() {
        let p = platforms::henri();
        let mut w = World::pair(&p);
        let r0 = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let one_way = w.wait(r0).unwrap();

        let mut w = World::pair(&p);
        let r0 = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        let r1 = w.irecv(1, 0, n0(), MB64, Tag(1)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        w.isend(0, 1, n0(), MB64, Tag(1)).unwrap();
        let both = w.wait_all(&[r0, r1]).unwrap();
        // Each node now both sends and receives: its NIC wire carries two
        // flows, so the pair takes measurably longer than a single pong.
        assert!(both > 1.5 * one_way, "one_way={one_way}, both={both}");
    }

    #[test]
    fn advance_by_moves_the_clock_even_when_idle() {
        let mut w = World::pair(&platforms::henri());
        w.advance_by(0.5);
        assert!((w.now() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn posting_order_send_first_also_matches() {
        let mut w = World::pair(&platforms::henri());
        let s = w.isend(1, 0, n0(), MB64, Tag(9)).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(9)).unwrap();
        w.wait_all(&[s, r]).unwrap();
    }

    #[test]
    fn history_records_transfers_and_jobs() {
        let p = platforms::henri();
        let mut w = World::pair(&p);
        let j = w.start_compute(0, n0(), 4, 256 << 20).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        w.wait(r).unwrap();
        w.wait_job(j).unwrap();

        let transfers = w.transfer_history();
        assert_eq!(transfers.len(), 1);
        let tr = &transfers[0];
        assert_eq!((tr.src, tr.dst), (1, 0));
        assert_eq!(tr.bytes, MB64 as f64);
        let finished = tr.finished_at.expect("transfer completed");
        assert!(finished > tr.matched_at);

        let jobs = w.job_history();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].cores, 4);
        assert!(jobs[0].finished_at.unwrap() > jobs[0].started_at);
    }

    #[test]
    fn unmatched_transfer_stays_unfinished_in_history() {
        let p = platforms::henri();
        let mut w = World::pair(&p);
        let _r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        // Never matched: nothing in the transfer history yet.
        assert!(w.transfer_history().is_empty());
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        // Matched but not progressed: recorded, not finished.
        assert_eq!(w.transfer_history().len(), 1);
        assert!(w.transfer_history()[0].finished_at.is_none());
    }

    #[test]
    fn zero_byte_compute_job_completes_immediately() {
        let mut w = World::pair(&platforms::henri());
        let j = w.start_compute(0, n0(), 2, 0).unwrap();
        assert_eq!(w.wait_job(j).unwrap(), 0.0);
    }

    #[test]
    fn job_status_is_a_nonblocking_wait_job() {
        let mut w = World::pair(&platforms::henri());
        let j = w.start_compute(0, n0(), 2, 64 << 20).unwrap();
        assert_eq!(w.job_status(j).unwrap(), None);
        let t = w.wait_job(j).unwrap();
        assert_eq!(w.job_status(j).unwrap(), Some(t));
        assert_eq!(
            w.job_status(JobId(9999)).unwrap_err(),
            MpiError::UnknownJob(JobId(9999))
        );
    }

    #[test]
    fn poll_advances_to_the_next_event_only() {
        let mut w = World::pair(&platforms::henri());
        assert!(!w.poll(), "idle world cannot progress");
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let mut steps = 0;
        while !w.test(r).unwrap() {
            assert!(w.poll(), "matched transfer must progress");
            steps += 1;
            assert!(steps < 100, "transfer completes in a few phase changes");
        }
        // Pre → streaming → post → done: at least three events.
        assert!(steps >= 3, "steps = {steps}");
    }

    #[test]
    fn uncontended_baseline_ignores_memory_contention() {
        let p = platforms::henri();
        // Contended: 17 cores hammering the receiver slow the transfer.
        let mut w = World::pair(&p);
        w.start_compute(0, n0(), 17, 8 << 30).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let contended = w.wait(r).unwrap();

        // Baseline: same schedule, contention off — the transfer runs at
        // its alone bandwidth as if the cores were not there.
        let mut w = World::pair(&p);
        w.set_contended(false);
        assert!(!w.contended());
        w.start_compute(0, n0(), 17, 8 << 30).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let baseline = w.wait(r).unwrap();

        // And the actual alone time, with no compute at all.
        let mut w = World::pair(&p);
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let alone = w.wait(r).unwrap();

        assert!(contended > 2.0 * baseline, "{contended} vs {baseline}");
        assert!(
            (baseline - alone).abs() / alone < 1e-9,
            "baseline {baseline} == alone {alone}"
        );
    }

    #[test]
    fn cxl_mode_requires_a_pool() {
        let mut w = World::pair(&platforms::henri());
        assert_eq!(
            w.set_comm_mode(CommMode::Cxl).unwrap_err(),
            MpiError::NoCxlPool("henri".into())
        );
        // The failed switch leaves the world in messaging mode.
        assert_eq!(w.comm_mode(), CommMode::Messages);
        let mut w = World::pair(&platforms::henri_cxl());
        w.set_comm_mode(CommMode::Cxl).unwrap();
        assert_eq!(w.comm_mode(), CommMode::Cxl);
    }

    #[test]
    fn uncontended_cxl_transfer_is_slower_than_messaging() {
        let p = platforms::henri_cxl();
        let mut w = World::pair(&p);
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let messages = w.wait(r).unwrap();

        let mut w = World::pair(&p);
        w.set_comm_mode(CommMode::Cxl).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let cxl = w.wait(r).unwrap();
        // 64 MiB at ~11.3 GB/s (wire) vs 6 GB/s (pool stream).
        assert!(cxl > 1.5 * messages, "cxl={cxl}, messages={messages}");
    }

    #[test]
    fn contended_cxl_transfer_beats_the_floored_nic() {
        // 17 cores hammer the receiver's buffer node: the NIC drops to
        // its arbitration floor, but CXL pool streams keep the CPU-class
        // max-min share — the message-free crossover.
        let p = platforms::henri_cxl();
        let mut w = World::pair(&p);
        w.start_compute(0, n0(), 17, 8 << 30).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let messages = w.wait(r).unwrap();

        let mut w = World::pair(&p);
        w.set_comm_mode(CommMode::Cxl).unwrap();
        w.start_compute(0, n0(), 17, 8 << 30).unwrap();
        let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
        w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
        let cxl = w.wait(r).unwrap();
        assert!(cxl < messages, "cxl={cxl}, messages={messages}");
    }

    #[test]
    fn cxl_runs_are_bit_identical() {
        let run = || {
            let mut w = World::pair(&platforms::dahu_cxl());
            w.set_comm_mode(CommMode::Cxl).unwrap();
            w.start_compute(0, n0(), 8, 2 << 30).unwrap();
            let r = w.irecv(0, 1, n0(), MB64, Tag(0)).unwrap();
            w.isend(1, 0, n0(), MB64, Tag(0)).unwrap();
            w.wait(r).unwrap()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn uncontended_compute_runs_at_single_core_scaling() {
        let p = platforms::henri();
        let per_core = 256u64 << 20;
        // 17 cores contended: well below 17x one core's alone bandwidth.
        let mut w = World::pair(&p);
        let j = w.start_compute(0, n0(), 17, per_core).unwrap();
        let contended = w.wait_job(j).unwrap();
        // Uncontended: every core streams at its alone bandwidth.
        let mut w = World::pair(&p);
        w.set_contended(false);
        let j = w.start_compute(0, n0(), 17, per_core).unwrap();
        let baseline = w.wait_job(j).unwrap();
        // A single core alone streams at 5.6 GB/s on henri; uncontended
        // mode grants every core exactly that.
        let expected = per_core as f64 / 5.6e9;
        assert!(
            (baseline - expected).abs() / expected < 0.01,
            "baseline {baseline} vs single-core alone {expected}"
        );
        assert!(contended > 1.15 * baseline, "{contended} vs {baseline}");
    }
}
