//! Errors of the message-passing simulator.

use std::fmt;

use crate::request::{JobId, Rank, RequestId};

/// Errors raised by [`crate::world::World`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A rank outside `0..world_size` was used.
    InvalidRank(Rank),
    /// A request id that was never issued (or already reaped).
    UnknownRequest(RequestId),
    /// A job id that was never issued (or already reaped).
    UnknownJob(JobId),
    /// The matched send was larger than the receive buffer.
    Truncated(RequestId),
    /// Send and receive ranks coincide — the simulator models network
    /// transfers only, not self-sends.
    SelfMessage(Rank),
    /// Waiting would never return: the request's peer operation was never
    /// posted and no further progress is possible.
    Deadlock(RequestId),
    /// Message-free (CXL) communication was requested on a platform whose
    /// topology declares no CXL.mem pool.
    NoCxlPool(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::UnknownRequest(r) => write!(f, "unknown request {r}"),
            MpiError::UnknownJob(j) => write!(f, "unknown job {j}"),
            MpiError::Truncated(r) => write!(f, "message truncated on {r}"),
            MpiError::SelfMessage(r) => write!(f, "rank {r} cannot message itself"),
            MpiError::Deadlock(r) => write!(f, "deadlock: {r} can never complete"),
            MpiError::NoCxlPool(p) => {
                write!(f, "platform {p} has no CXL.mem pool for message-free mode")
            }
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MpiError::InvalidRank(7).to_string().contains('7'));
        assert!(MpiError::Deadlock(RequestId(1))
            .to_string()
            .contains("req1"));
    }

    #[test]
    fn implements_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&MpiError::SelfMessage(0));
    }
}
