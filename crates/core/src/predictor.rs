//! The predictor abstraction: anything that can predict parallel-phase
//! bandwidths for a placement. The paper's model implements it; so do the
//! comparison baselines in [`crate::baselines`], which lets the evaluation
//! harness (Table II) and the ablation benches score them uniformly.

use mc_topology::NumaId;

use crate::instantiation::Prediction;
use crate::placement::ContentionModel;

/// A bandwidth predictor for the parallel phase.
pub trait BandwidthPredictor {
    /// Human-readable name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Predict computation and communication bandwidth with `n` computing
    /// cores, computation data on `m_comp` and communication data on
    /// `m_comm`.
    fn predict_parallel_bw(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction;
}

impl BandwidthPredictor for ContentionModel {
    fn name(&self) -> &'static str {
        "threshold-model"
    }

    fn predict_parallel_bw(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction {
        self.predict(n, m_comp, m_comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_sweeps, BenchConfig};
    use mc_topology::platforms;

    #[test]
    fn model_implements_predictor() {
        let p = platforms::henri();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::exact());
        let m = ContentionModel::calibrate(&p.topology, &local, &remote).unwrap();
        let dyn_pred: &dyn BandwidthPredictor = &m;
        assert_eq!(dyn_pred.name(), "threshold-model");
        let pred = dyn_pred.predict_parallel_bw(4, NumaId::new(0), NumaId::new(0));
        assert!(pred.comp > 0.0 && pred.comm > 0.0);
    }
}
