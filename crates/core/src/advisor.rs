//! Placement advisor — the application of the model the paper's conclusion
//! sketches as future work: "runtime systems could better know on which
//! NUMA node store data and how many computing cores should be used to
//! avoid memory contention."
//!
//! Given a calibrated model and an application phase (so many bytes of
//! memory-bound computation, so many bytes to receive from the network),
//! the advisor scores every `(n, m_comp, m_comm)` choice by a **two-phase
//! makespan**: both streams progress at the *contended* bandwidths the
//! model predicts until the shorter one finishes, after which the survivor
//! speeds up to its *alone* bandwidth — the transient Langguth et al. [13]
//! model and the paper's §V discussion describe. The configuration with
//! the smallest makespan wins.

use serde::{Deserialize, Serialize};

use mc_topology::NumaId;

use crate::placement::ContentionModel;

/// An application phase to place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Bytes the computation must move through memory.
    pub compute_bytes: f64,
    /// Bytes to receive from the network.
    pub comm_bytes: f64,
    /// Largest core count available for computing.
    pub max_cores: usize,
}

/// One scored configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Computing cores to use.
    pub n_cores: usize,
    /// NUMA node for computation data.
    pub m_comp: NumaId,
    /// NUMA node for communication buffers.
    pub m_comm: NumaId,
    /// Predicted computation bandwidth under overlap, GB/s.
    pub comp_bw: f64,
    /// Predicted communication bandwidth under overlap, GB/s.
    pub comm_bw: f64,
    /// Estimated phase makespan, seconds (two-phase overlapped execution:
    /// contended rates while both streams run, alone rate for the
    /// survivor's remainder).
    pub makespan: f64,
}

/// Two-phase makespan: contended rates until the shorter stream finishes,
/// then the survivor continues at its alone rate. All bandwidths in GB/s,
/// bytes in bytes, result in seconds.
pub fn two_phase_makespan(
    par: crate::instantiation::Prediction,
    alone: crate::instantiation::Prediction,
    compute_bytes: f64,
    comm_bytes: f64,
) -> f64 {
    let t_comp = compute_bytes / (par.comp * 1e9);
    let t_comm = comm_bytes / (par.comm * 1e9);
    if t_comp <= t_comm {
        let remaining = (comm_bytes - t_comp * par.comm * 1e9).max(0.0);
        t_comp + remaining / (alone.comm * 1e9)
    } else {
        let remaining = (compute_bytes - t_comm * par.comp * 1e9).max(0.0);
        t_comm + remaining / (alone.comp * 1e9)
    }
}

/// Score every configuration and return them sorted by makespan
/// (best first). Ties break towards fewer cores (cheaper) and lower NUMA
/// indexes (deterministic output). A phase with `max_cores == 0` has no
/// feasible configuration and ranks to an empty list (callers that treat
/// zero cores as a usage error should validate before ranking, as the CLI
/// does).
pub fn rank(model: &ContentionModel, phase: &PhaseProfile) -> Vec<Recommendation> {
    let mut out = Vec::new();
    for (m_comp, m_comm) in model.placements() {
        for n in 1..=phase.max_cores {
            let pred = model.predict(n, m_comp, m_comm);
            if pred.comp <= 0.0 || pred.comm <= 0.0 {
                continue;
            }
            let alone = model.predict_alone(n, m_comp, m_comm);
            out.push(Recommendation {
                n_cores: n,
                m_comp,
                m_comm,
                comp_bw: pred.comp,
                comm_bw: pred.comm,
                makespan: two_phase_makespan(pred, alone, phase.compute_bytes, phase.comm_bytes),
            });
        }
    }
    out.sort_by(|a, b| {
        a.makespan
            .total_cmp(&b.makespan)
            .then(a.n_cores.cmp(&b.n_cores))
            .then(a.m_comp.cmp(&b.m_comp))
            .then(a.m_comm.cmp(&b.m_comm))
    });
    out
}

/// The single best configuration.
pub fn recommend(model: &ContentionModel, phase: &PhaseProfile) -> Option<Recommendation> {
    rank(model, phase).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_sweeps, BenchConfig};
    use mc_topology::platforms;

    fn model_for(p: &mc_topology::Platform) -> ContentionModel {
        let (local, remote) = calibration_sweeps(p, BenchConfig::exact());
        ContentionModel::calibrate(&p.topology, &local, &remote).unwrap()
    }

    #[test]
    fn recommends_separated_placements_for_balanced_phases() {
        let p = platforms::henri_subnuma();
        let m = model_for(&p);
        let phase = PhaseProfile {
            compute_bytes: 40e9,
            comm_bytes: 10e9,
            max_cores: 17,
        };
        let best = recommend(&m, &phase).unwrap();
        // With heavy streams on both sides, the recommendation must beat
        // the naive choice of piling everything on node 0 with all cores.
        let naive = m.predict(17, NumaId::new(0), NumaId::new(0));
        let naive_makespan =
            (phase.compute_bytes / (naive.comp * 1e9)).max(phase.comm_bytes / (naive.comm * 1e9));
        assert!(
            best.makespan < naive_makespan * 0.95,
            "best {} vs naive {naive_makespan}",
            best.makespan
        );
    }

    #[test]
    fn makespan_bounded_by_steady_state_and_lone_stream() {
        let p = platforms::henri();
        let m = model_for(&p);
        let phase = PhaseProfile {
            compute_bytes: 10e9,
            comm_bytes: 1e9,
            max_cores: 4,
        };
        for r in rank(&m, &phase) {
            let t_comp = phase.compute_bytes / (r.comp_bw * 1e9);
            let t_comm = phase.comm_bytes / (r.comm_bw * 1e9);
            // Two-phase makespan is at most the steady-state bound and at
            // least the longer contended stream's own work at alone speed.
            assert!(r.makespan <= t_comp.max(t_comm) + 1e-12);
            assert!(r.makespan >= t_comp.min(t_comm) - 1e-12);
        }
    }

    #[test]
    fn two_phase_makespan_handles_both_orders() {
        use crate::instantiation::Prediction;
        let par = Prediction {
            comp: 10.0,
            comm: 2.0,
        };
        let alone = Prediction {
            comp: 20.0,
            comm: 10.0,
        };
        // Compute finishes first: 10 GB / 10 GB/s = 1 s; comm has moved
        // 2 GB, 8 GB left at 10 GB/s -> 0.8 s more.
        let t = two_phase_makespan(par, alone, 10e9, 10e9);
        assert!((t - 1.8).abs() < 1e-9, "{t}");
        // Comm finishes first: comm 2 GB at 2 GB/s = 1 s; compute moved
        // 10 GB, 30 GB left at 20 GB/s -> 1.5 s more.
        let t = two_phase_makespan(par, alone, 40e9, 2e9);
        assert!((t - 2.5).abs() < 1e-9, "{t}");
    }

    #[test]
    fn ranking_is_sorted_and_exhaustive() {
        let p = platforms::henri();
        let m = model_for(&p);
        let phase = PhaseProfile {
            compute_bytes: 1e9,
            comm_bytes: 1e9,
            max_cores: 17,
        };
        let ranked = rank(&m, &phase);
        assert_eq!(ranked.len(), 4 * 17);
        for w in ranked.windows(2) {
            assert!(w[0].makespan <= w[1].makespan + 1e-15);
        }
    }

    #[test]
    fn more_cores_help_compute_heavy_phases() {
        let p = platforms::henri();
        let m = model_for(&p);
        let phase = PhaseProfile {
            compute_bytes: 100e9,
            comm_bytes: 0.1e9,
            max_cores: 17,
        };
        let best = recommend(&m, &phase).unwrap();
        assert!(best.n_cores >= 10, "compute-heavy phase wants many cores");
    }

    #[test]
    fn zero_cores_ranks_to_nothing() {
        let p = platforms::henri();
        let m = model_for(&p);
        let phase = PhaseProfile {
            compute_bytes: 1.0,
            comm_bytes: 1.0,
            max_cores: 0,
        };
        assert!(rank(&m, &phase).is_empty());
        assert_eq!(recommend(&m, &phase), None);
    }
}
