//! A sharded LRU cache of calibrated [`ContentionModel`]s — the memory
//! behind the `memcontend serve` prediction service.
//!
//! Calibrating a model means running two benchmark sweeps; answering a
//! prediction query with a calibrated model is a handful of float
//! operations. A long-lived service therefore wants to pay the sweep cost
//! once per *(platform, bench configuration, calibration placements)* and
//! amortise it over every subsequent query. [`ModelRegistry`] provides
//! exactly that:
//!
//! * **Sharded**: keys hash onto a fixed set of shards, each behind its
//!   own `Mutex`, so concurrent batch workers querying different
//!   platforms never serialise on one lock.
//! * **Populate-once**: a miss holds its shard's lock while the builder
//!   closure calibrates, so N workers racing for the same cold key run
//!   one calibration, not N — the rest block briefly and then hit.
//! * **LRU-bounded**: each shard evicts its least-recently-used entry
//!   when full, so a what-if workload scanning many machine
//!   configurations cannot grow the process without bound.
//! * **Warm-loadable**: entries can be seeded from persisted model text
//!   files ([`crate::persist::model_from_text`]) at startup, skipping the
//!   calibration sweeps entirely.
//!
//! Hit/miss/eviction counts are kept in atomics (cheap enough to be
//! always-on) and mirrored to the `mc-obs` recorder when one is
//! installed, under `registry.hit` / `registry.miss` /
//! `registry.eviction` tagged with the platform.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mc_topology::NumaId;

use crate::error::McError;
use crate::placement::ContentionModel;

/// Identity of a cached model: which machine, measured how, calibrated
/// from which placement pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegistryKey {
    /// Platform name (or a pseudo-platform such as `file:path` for models
    /// loaded from disk).
    pub platform: String,
    /// Benchmark-configuration tag (`"default"`, `"exact"`, `"file"`, …) —
    /// models calibrated under different configurations never alias.
    pub config: String,
    /// The two calibration placements `((comp, comm) local, (comp, comm)
    /// remote)` the model was (or would be) instantiated from.
    pub placements: ((NumaId, NumaId), (NumaId, NumaId)),
}

impl RegistryKey {
    /// Key for a platform calibrated from the given placements under a
    /// named benchmark configuration.
    pub fn new(
        platform: impl Into<String>,
        config: impl Into<String>,
        placements: ((NumaId, NumaId), (NumaId, NumaId)),
    ) -> Self {
        RegistryKey {
            platform: platform.into(),
            config: config.into(),
            placements,
        }
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() % shards as u64) as usize
    }
}

struct Entry {
    key: RegistryKey,
    model: Arc<ContentionModel>,
    /// Logical LRU timestamp (registry-wide monotonic tick).
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
}

/// Snapshot of a registry's counters, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build (or failed building) a model.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl RegistryStats {
    /// Fraction of lookups answered from the cache, in `[0, 1]`; `0.0`
    /// before any lookup (a cold registry has no hit rate worth 1.0).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded LRU cache of calibrated models. See the module docs.
pub struct ModelRegistry {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count: enough that a handful of batch workers rarely
/// collide, small enough that a tiny capacity still spreads sensibly.
const DEFAULT_SHARDS: usize = 8;

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .finish_non_exhaustive()
    }
}

impl ModelRegistry {
    /// A registry holding at most `capacity` models, spread over the
    /// default shard count. A capacity below the shard count still grants
    /// every shard room for one entry (the bound is approximate by design;
    /// an exact global bound would need a global lock).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A registry with an explicit shard count (mostly for tests; the
    /// default is right for service use).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.div_ceil(shards).max(1);
        ModelRegistry {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            clock: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &RegistryKey) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[key.shard_of(self.shards.len())]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn record(&self, counter: &str, platform: &str) {
        if let Some(rec) = mc_obs::recorder() {
            rec.add(
                counter,
                &[(mc_obs::tags::PLATFORM, mc_obs::TagValue::Str(platform))],
                1,
            );
        }
    }

    /// Look up a model without populating on miss. Counts a hit or a miss.
    pub fn get(&self, key: &RegistryKey) -> Option<Arc<ContentionModel>> {
        let tick = self.tick();
        let mut shard = self.shard(key);
        match shard.entries.iter_mut().find(|e| e.key == *key) {
            Some(entry) => {
                entry.last_used = tick;
                let model = Arc::clone(&entry.model);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.record("registry.hit", &key.platform);
                Some(model)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.record("registry.miss", &key.platform);
                None
            }
        }
    }

    /// Look up a model, calibrating it with `build` on miss. Returns the
    /// model and whether the lookup was a cache hit.
    ///
    /// The shard lock is held *across* `build`: concurrent callers racing
    /// for the same cold key calibrate once and the losers observe a hit.
    /// The flip side — a slow build briefly blocks other keys on the same
    /// shard — is the right trade for this workload, where a duplicated
    /// calibration sweep costs far more than a blocked lookup.
    pub fn get_or_insert_with(
        &self,
        key: &RegistryKey,
        build: impl FnOnce() -> Result<ContentionModel, McError>,
    ) -> Result<(Arc<ContentionModel>, bool), McError> {
        let tick = self.tick();
        let mut shard = self.shard(key);
        if let Some(entry) = shard.entries.iter_mut().find(|e| e.key == *key) {
            entry.last_used = tick;
            let model = Arc::clone(&entry.model);
            drop(shard);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record("registry.hit", &key.platform);
            return Ok((model, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.record("registry.miss", &key.platform);
        let model = Arc::new(build()?);
        self.insert_locked(&mut shard, key.clone(), Arc::clone(&model));
        Ok((model, false))
    }

    /// Seed an entry without counting a miss — the warm-load path. An
    /// existing entry for the key is replaced.
    pub fn warm(&self, key: RegistryKey, model: ContentionModel) {
        let mut shard = self.shard(&key);
        shard.entries.retain(|e| e.key != key);
        self.insert_locked(&mut shard, key, Arc::new(model));
    }

    /// Seed an entry from a persisted model text (the `model_to_text`
    /// format); see [`ModelRegistry::warm`].
    pub fn warm_from_text(&self, key: RegistryKey, text: &str) -> Result<(), McError> {
        let model = crate::persist::model_from_text(text).map_err(McError::from)?;
        self.warm(key, model);
        Ok(())
    }

    fn insert_locked(&self, shard: &mut Shard, key: RegistryKey, model: Arc<ContentionModel>) {
        if shard.entries.len() >= self.capacity_per_shard {
            // Evict the least-recently-used entry of this shard.
            if let Some(lru) = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                let evicted = shard.entries.swap_remove(lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.record("registry.eviction", &evicted.key.platform);
            }
        }
        shard.entries.push(Entry {
            key,
            model,
            last_used: self.tick(),
        });
    }

    /// Number of models currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_placements, calibration_sweeps, BenchConfig};
    use mc_topology::platforms;

    fn key_for(name: &str) -> RegistryKey {
        let p = platforms::by_name(name).unwrap();
        RegistryKey::new(name, "default", calibration_placements(&p))
    }

    fn build_for(name: &str) -> Result<ContentionModel, McError> {
        let p = platforms::by_name(name).unwrap();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
        ContentionModel::calibrate(&p.topology, &local, &remote).map_err(McError::from)
    }

    #[test]
    fn misses_build_then_hits_reuse() {
        let reg = ModelRegistry::new(4);
        let key = key_for("henri");
        let (m1, hit1) = reg.get_or_insert_with(&key, || build_for("henri")).unwrap();
        assert!(!hit1);
        let (m2, hit2) = reg
            .get_or_insert_with(&key, || panic!("must not rebuild"))
            .unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&m1, &m2));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn distinct_configs_do_not_alias() {
        let reg = ModelRegistry::new(4);
        let p = platforms::henri();
        let placements = calibration_placements(&p);
        let k_default = RegistryKey::new("henri", "default", placements);
        let k_exact = RegistryKey::new("henri", "exact", placements);
        reg.get_or_insert_with(&k_default, || build_for("henri"))
            .unwrap();
        let (_, hit) = reg
            .get_or_insert_with(&k_exact, || {
                let (local, remote) = calibration_sweeps(&p, BenchConfig::exact());
                ContentionModel::calibrate(&p.topology, &local, &remote).map_err(McError::from)
            })
            .unwrap();
        assert!(!hit, "a different bench config is a different model");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let reg = ModelRegistry::new(4);
        let key = key_for("henri");
        let err = reg.get_or_insert_with(&key, || {
            Err(McError::from(
                crate::calibrate::CalibrationError::EmptySweep,
            ))
        });
        assert!(err.is_err());
        assert_eq!(reg.len(), 0);
        // The key stays populatable after a failure.
        let (_, hit) = reg.get_or_insert_with(&key, || build_for("henri")).unwrap();
        assert!(!hit);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // One shard, room for two: touching "a" before inserting "c" must
        // evict "b", the least recently used.
        let reg = ModelRegistry::with_shards(2, 1);
        let model = build_for("henri").unwrap();
        let (ka, kb, kc) = (key_for("henri"), key_for("dahu"), key_for("diablo"));
        reg.warm(ka.clone(), model.clone());
        reg.warm(kb.clone(), model.clone());
        assert!(reg.get(&ka).is_some());
        reg.warm(kc.clone(), model);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().evictions, 1);
        assert!(reg.get(&ka).is_some(), "recently used survives");
        assert!(reg.get(&kb).is_none(), "stalest entry evicted");
        assert!(reg.get(&kc).is_some());
    }

    #[test]
    fn warm_from_text_loads_a_persisted_model() {
        let reg = ModelRegistry::new(4);
        let model = build_for("henri").unwrap();
        let text = crate::persist::model_to_text(&model);
        let key = key_for("henri");
        reg.warm_from_text(key.clone(), &text).unwrap();
        let (cached, hit) = reg
            .get_or_insert_with(&key, || panic!("warm entry must hit"))
            .unwrap();
        assert!(hit);
        let a = model.predict(4, NumaId::new(0), NumaId::new(1));
        let b = cached.predict(4, NumaId::new(0), NumaId::new(1));
        assert!((a.comp - b.comp).abs() < 1e-9);
        assert!((a.comm - b.comm).abs() < 1e-9);
        // Malformed text propagates as invalid data, never as a panic.
        assert!(reg.warm_from_text(key, "[meta]\nx = NaN\n").is_err());
    }

    #[test]
    fn concurrent_cold_lookups_build_once() {
        use std::sync::atomic::AtomicUsize;
        let reg = ModelRegistry::new(4);
        let key = key_for("henri");
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    reg.get_or_insert_with(&key, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        build_for("henri")
                    })
                    .unwrap();
                });
            }
        });
        assert_eq!(
            builds.load(Ordering::Relaxed),
            1,
            "populate-once: racing workers must not duplicate calibration"
        );
        let stats = reg.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn hit_rate_tracks_the_counters() {
        let reg = ModelRegistry::new(4);
        assert_eq!(reg.stats().hit_rate(), 0.0, "cold registry");
        let key = key_for("henri");
        reg.get_or_insert_with(&key, || build_for("henri")).unwrap();
        assert_eq!(reg.stats().hit_rate(), 0.0, "one miss");
        for _ in 0..3 {
            reg.get(&key).unwrap();
        }
        assert!((reg.stats().hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_still_holds_one_entry_per_shard() {
        let reg = ModelRegistry::with_shards(0, 1);
        let key = key_for("henri");
        reg.warm(key.clone(), build_for("henri").unwrap());
        assert_eq!(reg.len(), 1);
        assert!(reg.get(&key).is_some());
    }
}
