//! The full contention model: two instantiations (local, remote) combined
//! across NUMA placements — equations (6) and (7) of the paper (§III-C).
//!
//! Calibrated from exactly two benchmark sweeps (both buffers on the first
//! NUMA node of the first socket; both on the first NUMA node of the second
//! socket), the model predicts computation and communication bandwidth for
//! *every* `(m_comp, m_comm)` placement combination — 16 of them on a
//! 4-NUMA machine — exploiting the symmetries of the machine topology.

use serde::{Deserialize, Serialize};

use mc_membench::record::PlacementSweep;
use mc_topology::{MachineTopology, NumaId};

use crate::calibrate::{calibrate, CalibrationError};
use crate::instantiation::{InstantiatedModel, Prediction};

/// The paper's model, fully instantiated for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    local: InstantiatedModel,
    remote: InstantiatedModel,
    /// Local model with the remote nominal network bandwidth substituted —
    /// the `Mlocal ⊓ Bcomm_seq(Mremote)` term of eq. 6, prebuilt.
    local_remote_comm: InstantiatedModel,
    /// NUMA nodes per socket — the paper's `#m`.
    numa_per_socket: usize,
    /// Machine-wide NUMA node count.
    numa_count: usize,
    /// The placement the local sweep was measured on.
    local_placement: (NumaId, NumaId),
    /// The placement the remote sweep was measured on.
    remote_placement: (NumaId, NumaId),
}

impl ContentionModel {
    /// Calibrate the model from the two sample sweeps.
    pub fn calibrate(
        topology: &MachineTopology,
        local_sweep: &PlacementSweep,
        remote_sweep: &PlacementSweep,
    ) -> Result<Self, CalibrationError> {
        let local = InstantiatedModel::new(calibrate(local_sweep)?);
        let remote = InstantiatedModel::new(calibrate(remote_sweep)?);
        let local_remote_comm =
            InstantiatedModel::new(local.params().with_b_comm_seq(remote.params().b_comm_seq));
        Ok(ContentionModel {
            local,
            remote,
            local_remote_comm,
            numa_per_socket: topology.numa_per_socket(),
            numa_count: topology.numa_count(),
            local_placement: (local_sweep.m_comp, local_sweep.m_comm),
            remote_placement: (remote_sweep.m_comp, remote_sweep.m_comm),
        })
    }

    /// Rebuild a model from its constituent parts (used by the persistence
    /// layer; prefer [`ContentionModel::calibrate`] for fresh data).
    pub fn from_parts(
        local: InstantiatedModel,
        remote: InstantiatedModel,
        numa_per_socket: usize,
        numa_count: usize,
        local_placement: (NumaId, NumaId),
        remote_placement: (NumaId, NumaId),
    ) -> Self {
        let local_remote_comm =
            InstantiatedModel::new(local.params().with_b_comm_seq(remote.params().b_comm_seq));
        ContentionModel {
            local,
            remote,
            local_remote_comm,
            numa_per_socket,
            numa_count,
            local_placement,
            remote_placement,
        }
    }

    /// The local-accesses instantiation `M_local`.
    pub fn local(&self) -> &InstantiatedModel {
        &self.local
    }

    /// The remote-accesses instantiation `M_remote`.
    pub fn remote(&self) -> &InstantiatedModel {
        &self.remote
    }

    /// The paper's `#m`.
    pub fn numa_per_socket(&self) -> usize {
        self.numa_per_socket
    }

    /// Is `numa` remote with respect to the computing socket (the `m ≥ #m`
    /// test of eqs. 6–7)?
    fn is_remote(&self, numa: NumaId) -> bool {
        numa.index() >= self.numa_per_socket
    }

    /// Was this placement one of the two used to instantiate the model
    /// (a *sample* in Table II's terminology)?
    pub fn is_sample_placement(&self, m_comp: NumaId, m_comm: NumaId) -> bool {
        (m_comp, m_comm) == self.local_placement || (m_comp, m_comm) == self.remote_placement
    }

    /// Equation (6): predicted communication bandwidth with `n` computing
    /// cores under the given placement.
    pub fn predict_comm(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> f64 {
        if self.is_remote(m_comp) && m_comp == m_comm {
            self.remote.predict_parallel(n).comm
        } else if self.is_remote(m_comm) {
            // Communications follow the local contention behaviour but
            // their nominal performance is that of remote-located data
            // (important on machines whose network is locality-sensitive).
            self.local_remote_comm.predict_parallel(n).comm
        } else {
            self.local.predict_parallel(n).comm
        }
    }

    /// Equation (7): predicted computation bandwidth with `n` computing
    /// cores under the given placement. Computations only suffer
    /// contention when communications target the same NUMA node.
    pub fn predict_comp(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> f64 {
        match (self.is_remote(m_comp), m_comp == m_comm) {
            (false, true) => self.local.predict_parallel(n).comp,
            (false, false) => self.local.comp_alone(n),
            (true, true) => self.remote.predict_parallel(n).comp,
            (true, false) => self.remote.comp_alone(n),
        }
    }

    /// Both predictions for the parallel phase.
    pub fn predict(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction {
        Prediction {
            comp: self.predict_comp(n, m_comp, m_comm),
            comm: self.predict_comm(n, m_comp, m_comm),
        }
    }

    /// Predicted bandwidths when computations and communications run
    /// *alone* under this placement (the paper's figures also plot these:
    /// eq. 8 for computations, `Bcomm_seq` of the matching locality for
    /// communications).
    pub fn predict_alone(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction {
        let comp = if self.is_remote(m_comp) {
            self.remote.comp_alone(n)
        } else {
            self.local.comp_alone(n)
        };
        let comm = if self.is_remote(m_comm) {
            self.remote.comm_alone()
        } else {
            self.local.comm_alone()
        };
        Prediction { comp, comm }
    }

    /// Predicted parallel curves over `1..=n_max` for one placement —
    /// what the model lines of Figs. 3–8 plot.
    pub fn predict_curve(
        &self,
        m_comp: NumaId,
        m_comm: NumaId,
        n_max: usize,
    ) -> Vec<(usize, Prediction)> {
        (1..=n_max)
            .map(|n| (n, self.predict(n, m_comp, m_comm)))
            .collect()
    }

    /// All placement combinations of the machine, matching
    /// [`mc_topology::MachineTopology::placement_combinations`] order.
    pub fn placements(&self) -> Vec<(NumaId, NumaId)> {
        let mut v = Vec::with_capacity(self.numa_count * self.numa_count);
        for comm in 0..self.numa_count {
            for comp in 0..self.numa_count {
                v.push((NumaId::new(comp as u16), NumaId::new(comm as u16)));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_sweeps, BenchConfig};
    use mc_topology::platforms;

    fn model_for(p: &mc_topology::Platform) -> ContentionModel {
        let (local, remote) = calibration_sweeps(p, BenchConfig::exact());
        ContentionModel::calibrate(&p.topology, &local, &remote).unwrap()
    }

    #[test]
    fn sample_placements_are_recognised() {
        let p = platforms::henri_subnuma();
        let m = model_for(&p);
        assert!(m.is_sample_placement(NumaId::new(0), NumaId::new(0)));
        assert!(m.is_sample_placement(NumaId::new(2), NumaId::new(2)));
        assert!(!m.is_sample_placement(NumaId::new(0), NumaId::new(1)));
    }

    #[test]
    fn placements_enumerate_the_full_grid() {
        let p = platforms::henri_subnuma();
        let m = model_for(&p);
        assert_eq!(m.placements().len(), 16);
        assert_eq!(m.placements(), p.topology.placement_combinations());
    }

    #[test]
    fn compute_unaffected_when_streams_are_apart() {
        let p = platforms::henri();
        let m = model_for(&p);
        let n = 10;
        // comp local / comm remote → compute-alone prediction.
        let apart = m.predict_comp(n, NumaId::new(0), NumaId::new(1));
        let alone = m.local().comp_alone(n);
        assert_eq!(apart, alone);
        // comp local / comm same node → contended prediction, never higher.
        let together = m.predict_comp(17, NumaId::new(0), NumaId::new(0));
        assert!(together <= m.local().comp_alone(17) + 1e-9);
    }

    #[test]
    fn both_remote_uses_the_remote_model() {
        let p = platforms::henri();
        let m = model_for(&p);
        let pred = m.predict(17, NumaId::new(1), NumaId::new(1));
        let remote = m.remote().predict_parallel(17);
        assert_eq!(pred.comp, remote.comp);
        assert_eq!(pred.comm, remote.comm);
    }

    #[test]
    fn remote_comm_inherits_remote_nominal_bandwidth() {
        // diablo: the NIC is on socket 1, so "remote" comm (node 0, from
        // the compute socket's viewpoint... node index >= #m means node 1)
        // is the NIC-local fast case — nominal bandwidths differ a lot and
        // eq. 6's substitution must carry the right one.
        let p = platforms::diablo();
        let m = model_for(&p);
        let b_local = m.local().params().b_comm_seq; // into node 0: slow path
        let b_remote = m.remote().params().b_comm_seq; // into node 1: NIC-local
        assert!(b_remote > 1.7 * b_local);
        // comm to node 1 with compute on node 0 (n small → no contention):
        let pred = m.predict_comm(1, NumaId::new(0), NumaId::new(1));
        assert!(
            (pred - b_remote).abs() / b_remote < 0.05,
            "{pred} vs {b_remote}"
        );
    }

    #[test]
    fn predict_alone_uses_matching_locality() {
        let p = platforms::henri();
        let m = model_for(&p);
        let a = m.predict_alone(17, NumaId::new(1), NumaId::new(0));
        assert_eq!(a.comp, m.remote().comp_alone(17));
        assert_eq!(a.comm, m.local().comm_alone());
    }

    #[test]
    fn predict_curve_covers_all_core_counts() {
        let p = platforms::occigen();
        let m = model_for(&p);
        let curve = m.predict_curve(NumaId::new(0), NumaId::new(0), 13);
        assert_eq!(curve.len(), 13);
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve[12].0, 13);
    }
}
