//! The unified model-pipeline error.
//!
//! Every fallible stage of the calibrate → persist → predict → evaluate
//! pipeline has its own typed error ([`CalibrationError`], [`ParamError`],
//! [`PersistError`], [`CsvError`], [`RobustnessError`]). [`McError`] is the
//! sum of all of them plus I/O, so callers — the CLI in particular — can
//! thread *one* error type end-to-end, print a human-readable diagnostic,
//! and map the failure to an exit code by [`ErrorCategory`] without
//! pattern-matching every leaf.

use std::fmt;

use mc_membench::record::CsvError;
use mc_topology::NumaId;

use crate::calibrate::CalibrationError;
use crate::params::ParamError;
use crate::persist::PersistError;
use crate::robustness::RobustnessError;

/// Coarse classification of an [`McError`], used for CLI exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCategory {
    /// The input data (sweep, parameter set, model file content) is
    /// invalid or degenerate.
    InvalidData,
    /// Reading or writing a file failed.
    Io,
}

/// Unified error for the whole model pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// A sweep failed to calibrate.
    Calibration(CalibrationError),
    /// A parameter set failed validation.
    Param(ParamError),
    /// A persisted model failed to parse.
    Persist(PersistError),
    /// A sweep CSV failed to parse.
    Csv(CsvError),
    /// A robustness aggregation was fed no data.
    Robustness(RobustnessError),
    /// A platform sweep lacks the placement a caller needs (e.g. one of
    /// the two calibration configurations).
    MissingPlacement {
        /// Computation-data NUMA node of the missing placement.
        m_comp: NumaId,
        /// Communication-data NUMA node of the missing placement.
        m_comm: NumaId,
    },
    /// A placement sweep lacks the core-count point a caller needs (e.g.
    /// the full-load point of a contention study).
    MissingCoreCount {
        /// The absent core count.
        n_cores: usize,
    },
    /// A file operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl McError {
    /// Which coarse failure class this error belongs to.
    pub fn category(&self) -> ErrorCategory {
        match self {
            McError::Io { .. } => ErrorCategory::Io,
            _ => ErrorCategory::InvalidData,
        }
    }

    /// Wrap an [`std::io::Error`] with the path it concerned.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> McError {
        McError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Calibration(e) => write!(f, "calibration failed: {e}"),
            McError::Param(e) => write!(f, "invalid model parameters: {e}"),
            McError::Persist(e) => write!(f, "model file: {e}"),
            McError::Csv(e) => write!(f, "sweep CSV: {e}"),
            McError::Robustness(e) => write!(f, "robustness aggregation: {e}"),
            McError::MissingPlacement { m_comp, m_comm } => write!(
                f,
                "sweep lacks the ({m_comp}, {m_comm}) placement needed here"
            ),
            McError::MissingCoreCount { n_cores } => {
                write!(f, "sweep lacks the n = {n_cores} point needed here")
            }
            McError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Calibration(e) => Some(e),
            McError::Param(e) => Some(e),
            McError::Persist(e) => Some(e),
            McError::Csv(e) => Some(e),
            McError::Robustness(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CalibrationError> for McError {
    fn from(e: CalibrationError) -> Self {
        McError::Calibration(e)
    }
}

impl From<ParamError> for McError {
    fn from(e: ParamError) -> Self {
        McError::Param(e)
    }
}

impl From<PersistError> for McError {
    fn from(e: PersistError) -> Self {
        McError::Persist(e)
    }
}

impl From<CsvError> for McError {
    fn from(e: CsvError) -> Self {
        McError::Csv(e)
    }
}

impl From<RobustnessError> for McError {
    fn from(e: RobustnessError) -> Self {
        McError::Robustness(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_split_io_from_data() {
        assert_eq!(
            McError::from(CalibrationError::EmptySweep).category(),
            ErrorCategory::InvalidData
        );
        assert_eq!(
            McError::Io {
                path: "x".into(),
                message: "nope".into()
            }
            .category(),
            ErrorCategory::Io
        );
    }

    #[test]
    fn display_preserves_the_leaf_diagnostic() {
        let e = McError::from(CalibrationError::EmptySweep);
        assert!(e.to_string().contains("empty sweep"));
        let e = McError::from(PersistError::MissingKey("alpha"));
        assert!(e.to_string().contains("alpha"));
    }

    #[test]
    fn source_chains_to_the_leaf() {
        use std::error::Error as _;
        let e = McError::from(ParamError::NonPositive("t_max_seq"));
        assert!(e.source().unwrap().to_string().contains("t_max_seq"));
    }

    #[test]
    fn missing_placement_names_the_nodes() {
        let e = McError::MissingPlacement {
            m_comp: NumaId::new(2),
            m_comm: NumaId::new(3),
        };
        let s = e.to_string();
        assert!(s.contains("numa2") || s.contains('2'), "{s}");
    }
}
