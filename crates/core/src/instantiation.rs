//! One model instantiation: equations (1)–(5) and (8) of the paper.
//!
//! An [`InstantiatedModel`] predicts, for a given number of computing cores
//! `n` on one socket, the memory bandwidth available to computations and to
//! communications when both run in parallel — under the locality class
//! (local or remote) its parameters were calibrated for.
//!
//! Prediction happens in two steps (§III-B): first the total bandwidth
//! `T(n)` the memory system can support is estimated (eq. 1), then that
//! total is split between computations and communications (eqs. 3–5).

use serde::{Deserialize, Serialize};

use crate::params::ModelParams;

/// Predicted bandwidths for one core count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Memory bandwidth for computations, GB/s.
    pub comp: f64,
    /// Network bandwidth for communications, GB/s.
    pub comm: f64,
}

impl Prediction {
    /// Stacked total.
    pub fn total(&self) -> f64 {
        self.comp + self.comm
    }
}

/// A calibrated single-locality model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstantiatedModel {
    params: ModelParams,
}

impl InstantiatedModel {
    /// Wrap a validated parameter set.
    pub fn new(params: ModelParams) -> Self {
        InstantiatedModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Equation (1): the total bandwidth `T(n)` the memory system can
    /// support with `n` computing cores — flat at `Tmax_par` up to
    /// `Nmax_par`, then decreasing by `δl` per core up to `Nmax_seq`, then
    /// by `δr` per core.
    ///
    /// The linear extrapolation is clamped at zero: the paper only ever
    /// evaluates `n` up to the socket's core count, but the library keeps
    /// the function total for any `n`.
    pub fn total_capacity(&self, n: usize) -> f64 {
        let p = &self.params;
        let t = if n <= p.n_max_par {
            p.t_max_par
        } else if n <= p.n_max_seq {
            p.t_max_par - p.delta_l * (n - p.n_max_par) as f64
        } else {
            p.t_max2_par - p.delta_r * (n - p.n_max_seq) as f64
        };
        t.max(0.0)
    }

    /// Equation (2): the bandwidth required to satisfy `n` computing cores
    /// plus the assured minimum for communications.
    pub fn requested(&self, n: usize) -> f64 {
        let p = &self.params;
        n as f64 * p.b_comp_seq + p.alpha * p.b_comm_seq
    }

    /// Is the memory system below its capacity threshold at `n` cores
    /// (`R(n) < T(n)`)?
    pub fn is_unsaturated(&self, n: usize) -> bool {
        self.requested(n) < self.total_capacity(n)
    }

    /// `i = max{ j | R(j) < T(j) }` — the largest core count that still
    /// fits under the threshold (used as the left anchor of the α(n)
    /// interpolation in eq. 5). `None` if even one core saturates the bus.
    pub fn last_unsaturated(&self) -> Option<usize> {
        // R is increasing in n and T non-increasing, so scan up from 1.
        let mut found = None;
        for j in 1..=self.params.n_max_seq.max(1) {
            if self.is_unsaturated(j) {
                found = Some(j);
            }
        }
        found
    }

    /// Communication share in the unsaturated regime: what is left of the
    /// total after computations took their demand, capped at the nominal
    /// network bandwidth (first branch of eq. 4).
    fn comm_unsaturated(&self, n: usize) -> f64 {
        let p = &self.params;
        (self.total_capacity(n) - n as f64 * p.b_comp_seq)
            .min(p.b_comm_seq)
            .max(0.0)
    }

    /// Equation (5): the communication impact factor α(n). In the
    /// saturated regime the bandwidth for communications does not drop
    /// abruptly to `α·Bcomm_seq`; between the last unsaturated core count
    /// `i` and `Nmax_seq` the factor is interpolated linearly.
    pub fn alpha_n(&self, n: usize) -> f64 {
        let p = &self.params;
        if p.n_max_seq.saturating_sub(p.n_max_par) > 1 && n < p.n_max_seq {
            if let Some(i) = self.last_unsaturated() {
                if n > i && p.n_max_seq > i {
                    let c_i = self.comm_unsaturated(i) / p.b_comm_seq;
                    let slope = (c_i - p.alpha) / (p.n_max_seq - i) as f64;
                    return (c_i - slope * (n - i) as f64)
                        .clamp(p.alpha.min(c_i), c_i.max(p.alpha));
                }
            }
        }
        p.alpha
    }

    /// Equations (3)–(5): predicted bandwidths with computations and
    /// communications in parallel.
    pub fn predict_parallel(&self, n: usize) -> Prediction {
        let p = &self.params;
        let t = self.total_capacity(n);
        if self.is_unsaturated(n) {
            let comp = n as f64 * p.b_comp_seq;
            Prediction {
                comp,
                comm: self.comm_unsaturated(n),
            }
        } else {
            // The guaranteed floor cannot exceed the capacity itself (only
            // reachable far beyond the calibrated core range, where the
            // extrapolated T(n) approaches zero).
            let comm = (self.alpha_n(n) * p.b_comm_seq).min(t);
            Prediction {
                comp: (t - comm).max(0.0),
                comm,
            }
        }
    }

    /// Equation (8): computations executed alone — perfect scaling limited
    /// by the bus capacity and by the compute-alone maximum.
    pub fn comp_alone(&self, n: usize) -> f64 {
        let p = &self.params;
        (n as f64 * p.b_comp_seq)
            .min(self.total_capacity(n))
            .min(p.t_max_seq)
    }

    /// Communications executed alone: the nominal network bandwidth.
    pub fn comm_alone(&self) -> f64 {
        self.params.b_comm_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::reference_params;

    fn model() -> InstantiatedModel {
        InstantiatedModel::new(reference_params())
    }

    #[test]
    fn total_capacity_is_flat_then_two_slopes() {
        let m = model();
        assert_eq!(m.total_capacity(1), 80.0);
        assert_eq!(m.total_capacity(12), 80.0);
        // δl region: 80 - 0.5·(n-12)
        assert!((m.total_capacity(13) - 79.5).abs() < 1e-12);
        assert!((m.total_capacity(14) - 79.0).abs() < 1e-12);
        // δr region anchored at t_max2_par: 79 - 0.55·(n-14)
        assert!((m.total_capacity(16) - (79.0 - 1.1)).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_continuous_at_the_kink() {
        // T(Nmax_seq) from the δl branch must equal Tmax2_par when the
        // calibration is self-consistent (δl derived from the same points).
        let m = model();
        let left = m.params().t_max_par
            - m.params().delta_l * (m.params().n_max_seq - m.params().n_max_par) as f64;
        assert!((left - m.params().t_max2_par).abs() < 1e-9);
        assert!((m.total_capacity(14) - 79.0).abs() < 1e-12);
    }

    #[test]
    fn requested_grows_linearly() {
        let m = model();
        let r1 = m.requested(1);
        let r2 = m.requested(2);
        assert!((r2 - r1 - 5.6).abs() < 1e-12);
        assert!((r1 - (5.6 + 0.25 * 11.3)).abs() < 1e-12);
    }

    #[test]
    fn unsaturated_regime_gives_perfect_scaling_and_full_comm() {
        let m = model();
        // R(4) = 22.4 + 2.825 < 80.
        let pred = m.predict_parallel(4);
        assert!((pred.comp - 22.4).abs() < 1e-12);
        assert!((pred.comm - 11.3).abs() < 1e-12);
    }

    #[test]
    fn comm_tapers_when_leftover_shrinks() {
        let m = model();
        // At n = 13: T = 79.5, comp = 72.8, leftover = 6.7 < Bcomm.
        // R(13) = 72.8 + 2.825 = 75.625 < 79.5 → unsaturated branch.
        let pred = m.predict_parallel(13);
        assert!((pred.comp - 72.8).abs() < 1e-12);
        assert!((pred.comm - 6.7).abs() < 1e-9);
    }

    #[test]
    fn saturated_regime_drops_comm_to_alpha() {
        let m = model();
        // n = 16 > Nmax_seq → α(n) = α.
        let pred = m.predict_parallel(16);
        assert!((pred.comm - 0.25 * 11.3).abs() < 1e-12);
        let t = m.total_capacity(16);
        assert!((pred.comp - (t - pred.comm)).abs() < 1e-12);
    }

    #[test]
    fn prediction_total_never_exceeds_capacity() {
        let m = model();
        for n in 1..=17 {
            let pred = m.predict_parallel(n);
            assert!(
                pred.total() <= m.total_capacity(n) + 1e-9,
                "n={n}: {} > {}",
                pred.total(),
                m.total_capacity(n)
            );
        }
    }

    #[test]
    fn comm_prediction_is_monotonically_non_increasing() {
        let m = model();
        let mut last = f64::INFINITY;
        for n in 1..=17 {
            let c = m.predict_parallel(n).comm;
            assert!(c <= last + 1e-9, "n={n}");
            last = c;
        }
    }

    #[test]
    fn alpha_n_interpolates_between_anchor_and_alpha() {
        let m = model();
        let i = m.last_unsaturated().unwrap();
        // At the anchor the factor equals the unsaturated comm share.
        let c_i = m.predict_parallel(i).comm / m.params().b_comm_seq;
        assert!(m.alpha_n(i + 1) <= c_i + 1e-9);
        assert!(m.alpha_n(m.params().n_max_seq) >= m.params().alpha - 1e-9);
        // Beyond Nmax_seq, exactly alpha.
        assert_eq!(m.alpha_n(m.params().n_max_seq + 1), m.params().alpha);
    }

    #[test]
    fn comp_alone_scales_then_clamps() {
        let m = model();
        assert!((m.comp_alone(4) - 22.4).abs() < 1e-12);
        // 15 cores would demand 84 > both T(15) and Tmax_seq = 80.
        assert!(m.comp_alone(15) <= 80.0);
    }

    #[test]
    fn comm_alone_is_nominal() {
        assert_eq!(model().comm_alone(), 11.3);
    }

    #[test]
    fn degenerate_no_gap_model_skips_interpolation() {
        // n_max_seq - n_max_par <= 1 → α(n) = α everywhere saturated.
        let mut p = reference_params();
        p.n_max_par = 14;
        p.t_max2_par = p.t_max_par;
        p.delta_l = 0.0;
        let m = InstantiatedModel::new(p);
        assert_eq!(m.alpha_n(13), p.alpha);
    }
}
