//! Model parameters (§III-A).
//!
//! One [`ModelParams`] set characterises the behaviour of the machine for
//! one locality class (local or remote accesses). The paper's notation maps
//! to fields as follows:
//!
//! | Paper            | Field          |
//! |------------------|----------------|
//! | `Nmax_par`       | `n_max_par`    |
//! | `Tmax_par`       | `t_max_par`    |
//! | `Nmax_seq`       | `n_max_seq`    |
//! | `Tmax_seq`       | `t_max_seq`    |
//! | `Tmax2_par`      | `t_max2_par`   |
//! | `δl`             | `delta_l`      |
//! | `δr`             | `delta_r`      |
//! | `Bcomp_seq`      | `b_comp_seq`   |
//! | `Bcomm_seq`      | `b_comm_seq`   |
//! | `α`              | `alpha`        |

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of one model instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Core count at which the maximum total parallel bandwidth is reached.
    pub n_max_par: usize,
    /// Maximum total memory bandwidth with computations and communications
    /// executed simultaneously, GB/s.
    pub t_max_par: f64,
    /// Core count at which the maximum compute-alone bandwidth is reached.
    pub n_max_seq: usize,
    /// Maximum memory bandwidth with computations alone, GB/s.
    pub t_max_seq: f64,
    /// Total parallel bandwidth when `n_max_seq` cores compute, GB/s.
    pub t_max2_par: f64,
    /// Total-bandwidth loss per extra core between `n_max_par` and
    /// `n_max_seq`, GB/s.
    pub delta_l: f64,
    /// Total-bandwidth loss per extra core beyond `n_max_seq`, GB/s.
    pub delta_r: f64,
    /// Memory bandwidth of a single computing core, GB/s.
    pub b_comp_seq: f64,
    /// Communication bandwidth with communications alone, GB/s.
    pub b_comm_seq: f64,
    /// Worst-case ratio of parallel communication bandwidth to
    /// `b_comm_seq` (the guaranteed minimum share).
    pub alpha: f64,
}

/// Validation errors for a parameter set.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A bandwidth or slope that must be positive/non-negative is not.
    NonPositive(&'static str),
    /// `n_max_par` exceeds `n_max_seq`, violating the model's shape.
    InvertedPeaks {
        /// Offending `n_max_par`.
        n_max_par: usize,
        /// Offending `n_max_seq`.
        n_max_seq: usize,
    },
    /// `alpha` outside `(0, 1]`.
    AlphaOutOfRange(f64),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NonPositive(what) => write!(f, "{what} must be positive"),
            ParamError::InvertedPeaks {
                n_max_par,
                n_max_seq,
            } => write!(
                f,
                "n_max_par ({n_max_par}) must not exceed n_max_seq ({n_max_seq})"
            ),
            ParamError::AlphaOutOfRange(a) => write!(f, "alpha {a} outside (0, 1]"),
        }
    }
}

impl std::error::Error for ParamError {}

impl ModelParams {
    /// Check the structural invariants the prediction equations rely on.
    pub fn validate(&self) -> Result<(), ParamError> {
        for (v, name) in [
            (self.t_max_par, "t_max_par"),
            (self.t_max_seq, "t_max_seq"),
            (self.t_max2_par, "t_max2_par"),
            (self.b_comp_seq, "b_comp_seq"),
            (self.b_comm_seq, "b_comm_seq"),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(ParamError::NonPositive(name));
            }
        }
        if self.delta_l < 0.0 {
            return Err(ParamError::NonPositive("delta_l"));
        }
        if self.delta_r < 0.0 {
            return Err(ParamError::NonPositive("delta_r"));
        }
        if self.n_max_par > self.n_max_seq {
            return Err(ParamError::InvertedPeaks {
                n_max_par: self.n_max_par,
                n_max_seq: self.n_max_seq,
            });
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0 + 1e-9) {
            return Err(ParamError::AlphaOutOfRange(self.alpha));
        }
        Ok(())
    }

    /// Replace the nominal communication bandwidth — the substitution the
    /// paper writes `Mlocal ⊓ Bcomm_seq(Mremote)` in eq. 6, used when
    /// communications follow the local contention behaviour but their
    /// nominal performance is that of remote data.
    pub fn with_b_comm_seq(mut self, b_comm_seq: f64) -> Self {
        self.b_comm_seq = b_comm_seq;
        self
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Nmax_par={} Tmax_par={:.2} Nmax_seq={} Tmax_seq={:.2} Tmax2_par={:.2} \
             δl={:.3} δr={:.3} Bcomp_seq={:.2} Bcomm_seq={:.2} α={:.3}",
            self.n_max_par,
            self.t_max_par,
            self.n_max_seq,
            self.t_max_seq,
            self.t_max2_par,
            self.delta_l,
            self.delta_r,
            self.b_comp_seq,
            self.b_comm_seq,
            self.alpha
        )
    }
}

#[cfg(test)]
pub(crate) fn reference_params() -> ModelParams {
    // Shaped after henri's local configuration.
    ModelParams {
        n_max_par: 12,
        t_max_par: 80.0,
        n_max_seq: 14,
        t_max_seq: 78.4,
        t_max2_par: 79.0,
        delta_l: 0.5,
        delta_r: 0.55,
        b_comp_seq: 5.6,
        b_comm_seq: 11.3,
        alpha: 0.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_validates() {
        reference_params().validate().unwrap();
    }

    #[test]
    fn rejects_zero_bandwidth() {
        let mut p = reference_params();
        p.b_comm_seq = 0.0;
        assert_eq!(p.validate(), Err(ParamError::NonPositive("b_comm_seq")));
    }

    #[test]
    fn rejects_inverted_peaks() {
        let mut p = reference_params();
        p.n_max_par = 15;
        assert!(matches!(
            p.validate(),
            Err(ParamError::InvertedPeaks { .. })
        ));
    }

    #[test]
    fn rejects_bad_alpha() {
        let mut p = reference_params();
        p.alpha = 0.0;
        assert!(matches!(p.validate(), Err(ParamError::AlphaOutOfRange(_))));
        p.alpha = 1.5;
        assert!(matches!(p.validate(), Err(ParamError::AlphaOutOfRange(_))));
    }

    #[test]
    fn rejects_negative_slopes() {
        let mut p = reference_params();
        p.delta_r = -0.1;
        assert_eq!(p.validate(), Err(ParamError::NonPositive("delta_r")));
    }

    #[test]
    fn with_b_comm_seq_substitutes() {
        let p = reference_params().with_b_comm_seq(22.4);
        assert_eq!(p.b_comm_seq, 22.4);
        assert_eq!(p.alpha, reference_params().alpha);
    }

    #[test]
    fn display_mentions_notation() {
        let s = reference_params().to_string();
        assert!(s.contains("Nmax_par=12"));
        assert!(s.contains("α=0.250"));
    }
}
