//! # mc-model — the paper's memory-contention model
//!
//! Implementation of the predictive model of *Modeling Memory Contention
//! between Communications and Computations in Distributed HPC Systems*
//! (Denis, Jeannot, Swartvagher, IPDPS-W 2022): given the number of
//! computing cores, the machine topology and the NUMA placement of
//! computation and communication data, predict the memory bandwidth each
//! stream obtains when they run side by side.
//!
//! The model is a **threshold model** (§II-D): below the memory-system
//! capacity `T(n)` both streams get their demand; above it, communications
//! are squeezed first — down to a guaranteed minimum `α·Bcomm_seq` — then
//! computations degrade uniformly. It is calibrated from exactly **two**
//! benchmark sweeps (both buffers local; both buffers on the first remote
//! NUMA node) and predicts **all** placement combinations via the
//! combination rules of eqs. (6)–(7).
//!
//! ```
//! use mc_membench::{calibration_sweeps, BenchConfig};
//! use mc_model::ContentionModel;
//! use mc_topology::{platforms, NumaId};
//!
//! let platform = platforms::henri();
//! // Two calibration runs (the only measurements the model needs):
//! let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());
//! let model = ContentionModel::calibrate(&platform.topology, &local, &remote).unwrap();
//! // Predict a placement that was never measured:
//! let pred = model.predict(17, NumaId::new(0), NumaId::new(1));
//! assert!(pred.comp > 0.0 && pred.comm > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod baselines;
pub mod calibrate;
pub mod collective_time;
pub mod error;
pub mod instantiation;
pub mod metrics;
pub mod params;
pub mod persist;
pub mod placement;
pub mod predictor;
pub mod registry;
pub mod robustness;
pub mod sparse;

pub use advisor::{rank, recommend, two_phase_makespan, PhaseProfile, Recommendation};
pub use baselines::{EqualShareBaseline, LocalOnlyBaseline, NoContentionBaseline};
pub use calibrate::{calibrate, CalibrationError};
pub use collective_time::{estimate_collective, Collective, CollectiveEstimate};
pub use error::{ErrorCategory, McError};
pub use instantiation::{InstantiatedModel, Prediction};
pub use metrics::{evaluate, format_percent, ErrorBreakdown, Mape};
pub use params::{ModelParams, ParamError};
pub use persist::{model_from_text, model_to_text, PersistError};
pub use placement::ContentionModel;
pub use predictor::BandwidthPredictor;
pub use registry::{ModelRegistry, RegistryKey, RegistryStats};
pub use robustness::{
    average_params, calibrate_all, fault_spread, param_spread, FaultSpreadReport, ParamSpread,
    RobustnessError, Spread,
};
pub use sparse::{calibrate_sparse, SparseCalibration};
