//! Prediction-error evaluation (Table II).
//!
//! The paper scores the model with the mean absolute percentage error
//! (MAPE), `100/n · Σ |a_k − p_k| / a_k`, separately for communications and
//! computations, and separately for the two placement configurations used
//! to instantiate the model ("samples") versus all others ("non-samples").

use serde::{Deserialize, Serialize};

use mc_membench::record::PlatformSweep;
use mc_topology::NumaId;

use crate::predictor::BandwidthPredictor;

/// Streaming MAPE accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Mape {
    sum: f64,
    count: usize,
    skipped: usize,
}

impl Mape {
    /// Add one (actual, predicted) pair. Pairs with a non-positive actual
    /// value are skipped (a percentage error is undefined there) — and
    /// *counted* as skipped, so an evaluation dominated by zero-bandwidth
    /// cells cannot silently report a confident error over almost no data.
    pub fn add(&mut self, actual: f64, predicted: f64) {
        if actual > 0.0 {
            self.sum += ((actual - predicted) / actual).abs();
            self.count += 1;
        } else {
            self.skipped += 1;
        }
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: Mape) {
        self.sum += other.sum;
        self.count += other.count;
        self.skipped += other.skipped;
    }

    /// The error in percent; `None` if no pairs were added (an empty
    /// accumulator has no error, not a perfect score of 0 %).
    pub fn percent(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(100.0 * self.sum / self.count as f64)
        }
    }

    /// Like [`Mape::percent`], with NaN marking the empty accumulator —
    /// for table cells, where NaN is rendered as "n/a" (see
    /// [`format_percent`]).
    pub fn percent_or_nan(&self) -> f64 {
        self.percent().unwrap_or(f64::NAN)
    }

    /// Number of pairs accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of pairs dropped because their actual value was
    /// non-positive (a percentage error is undefined there).
    pub fn skipped(&self) -> usize {
        self.skipped
    }
}

/// Render a percentage cell: `{value:>width$.2}`, with NaN (an empty MAPE
/// bucket) shown as `n/a` so a missing measurement can never masquerade as
/// a 0.00 % error.
pub fn format_percent(value: f64, width: usize) -> String {
    if value.is_nan() {
        format!("{:>width$}", "n/a")
    } else {
        format!("{value:>width$.2}")
    }
}

/// One platform's row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBreakdown {
    /// Communication error on sample placements, percent.
    pub comm_samples: f64,
    /// Communication error on non-sample placements, percent.
    pub comm_non_samples: f64,
    /// Communication error on all placements, percent.
    pub comm_all: f64,
    /// Computation error on sample placements, percent.
    pub comp_samples: f64,
    /// Computation error on non-sample placements, percent.
    pub comp_non_samples: f64,
    /// Computation error on all placements, percent.
    pub comp_all: f64,
    /// Mean of the communication and computation all-placements errors
    /// (the paper's "Average" column).
    pub average: f64,
    /// Pairs dropped across both streams and every placement because the
    /// measured value was non-positive — a non-zero count means the
    /// percentages above are computed over fewer cells than the sweep has.
    pub skipped: usize,
}

/// Evaluate a predictor against measured parallel-phase bandwidths.
///
/// `samples` lists the placements used to instantiate the predictor (the
/// paper's two calibration configurations).
pub fn evaluate(
    predictor: &dyn BandwidthPredictor,
    sweep: &PlatformSweep,
    samples: &[(NumaId, NumaId)],
) -> ErrorBreakdown {
    let _span = mc_obs::span(
        "evaluate",
        &[
            ("platform", mc_obs::TagValue::Str(&sweep.platform)),
            ("predictor", mc_obs::TagValue::Str(predictor.name())),
        ],
    );
    let rec = mc_obs::recorder();
    let mut comm_s = Mape::default();
    let mut comm_ns = Mape::default();
    let mut comp_s = Mape::default();
    let mut comp_ns = Mape::default();

    for placement in &sweep.sweeps {
        let is_sample = samples.contains(&(placement.m_comp, placement.m_comm));
        // Per-placement accumulators are kept separate from the global
        // ones (instead of merging into them) so the observability layer
        // never changes the float summation order of the reported errors.
        let mut comm_here = Mape::default();
        let mut comp_here = Mape::default();
        for point in &placement.points {
            let pred =
                predictor.predict_parallel_bw(point.n_cores, placement.m_comp, placement.m_comm);
            let (comm, comp) = if is_sample {
                (&mut comm_s, &mut comp_s)
            } else {
                (&mut comm_ns, &mut comp_ns)
            };
            comm.add(point.comm_par, pred.comm);
            comp.add(point.comp_par, pred.comp);
            if rec.is_some() {
                comm_here.add(point.comm_par, pred.comm);
                comp_here.add(point.comp_par, pred.comp);
            }
        }
        if let Some(rec) = &rec {
            let tags = [
                ("m_comp", mc_obs::TagValue::U64(placement.m_comp.0 as u64)),
                ("m_comm", mc_obs::TagValue::U64(placement.m_comm.0 as u64)),
            ];
            // Empty buckets carry no error (not a perfect 0 %): skip them
            // rather than export NaN.
            if let Some(pct) = comm_here.percent() {
                rec.observe("evaluate.mape_comm_pct", &tags, pct);
            }
            if let Some(pct) = comp_here.percent() {
                rec.observe("evaluate.mape_comp_pct", &tags, pct);
            }
        }
    }

    let mut comm_all = comm_s;
    comm_all.merge(comm_ns);
    let mut comp_all = comp_s;
    comp_all.merge(comp_ns);

    let skipped = comm_all.skipped() + comp_all.skipped();
    if skipped > 0 {
        if let Some(rec) = &rec {
            rec.add(
                "evaluate.skipped_pairs",
                &[("platform", mc_obs::TagValue::Str(&sweep.platform))],
                skipped as u64,
            );
        }
    }

    ErrorBreakdown {
        comm_samples: comm_s.percent_or_nan(),
        comm_non_samples: comm_ns.percent_or_nan(),
        comm_all: comm_all.percent_or_nan(),
        comp_samples: comp_s.percent_or_nan(),
        comp_non_samples: comp_ns.percent_or_nan(),
        comp_all: comp_all.percent_or_nan(),
        average: (comm_all.percent_or_nan() + comp_all.percent_or_nan()) / 2.0,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiation::Prediction;
    use mc_membench::record::{PlacementSweep, SweepPoint};

    struct Perfect(f64, f64);
    impl BandwidthPredictor for Perfect {
        fn name(&self) -> &'static str {
            "perfect"
        }
        fn predict_parallel_bw(&self, _: usize, _: NumaId, _: NumaId) -> Prediction {
            Prediction {
                comp: self.0,
                comm: self.1,
            }
        }
    }

    fn flat_sweep(comp: f64, comm: f64) -> PlatformSweep {
        PlatformSweep {
            platform: "synthetic".into(),
            sweeps: vec![
                PlacementSweep {
                    m_comp: NumaId::new(0),
                    m_comm: NumaId::new(0),
                    points: (1..=4)
                        .map(|n| SweepPoint {
                            n_cores: n,
                            comp_alone: comp,
                            comm_alone: comm,
                            comp_par: comp,
                            comm_par: comm,
                        })
                        .collect(),
                },
                PlacementSweep {
                    m_comp: NumaId::new(1),
                    m_comm: NumaId::new(0),
                    points: (1..=4)
                        .map(|n| SweepPoint {
                            n_cores: n,
                            comp_alone: comp,
                            comm_alone: comm,
                            comp_par: comp,
                            comm_par: comm,
                        })
                        .collect(),
                },
            ],
        }
    }

    #[test]
    fn perfect_predictor_scores_zero() {
        let sweep = flat_sweep(10.0, 5.0);
        let e = evaluate(
            &Perfect(10.0, 5.0),
            &sweep,
            &[(NumaId::new(0), NumaId::new(0))],
        );
        assert_eq!(e.comm_all, 0.0);
        assert_eq!(e.comp_all, 0.0);
        assert_eq!(e.average, 0.0);
    }

    #[test]
    fn ten_percent_off_scores_ten() {
        let sweep = flat_sweep(10.0, 5.0);
        let e = evaluate(
            &Perfect(9.0, 4.5),
            &sweep,
            &[(NumaId::new(0), NumaId::new(0))],
        );
        assert!((e.comp_all - 10.0).abs() < 1e-9);
        assert!((e.comm_all - 10.0).abs() < 1e-9);
        assert!((e.average - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sample_split_respects_membership() {
        let sweep = flat_sweep(10.0, 5.0);
        // Only the (0,0) placement is a sample; predict badly there only is
        // impossible with a constant predictor, so check the counts via an
        // asymmetric check: declare no samples — sample buckets are empty
        // and report n/a (NaN), never a fake perfect 0 %.
        let e = evaluate(&Perfect(9.0, 5.0), &sweep, &[]);
        assert!(e.comp_samples.is_nan());
        assert!(e.comm_samples.is_nan());
        assert!((e.comp_non_samples - 10.0).abs() < 1e-9);
        // The all-placements buckets are non-empty, so the average is real.
        assert!(!e.average.is_nan());
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let mut m = Mape::default();
        m.add(0.0, 5.0);
        assert_eq!(m.count(), 0);
        assert_eq!(m.skipped(), 1);
        assert_eq!(m.percent(), None);
        m.add(10.0, 5.0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.skipped(), 1);
        assert!((m.percent().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_carries_skipped_counts() {
        let mut a = Mape::default();
        a.add(-1.0, 2.0);
        let mut b = Mape::default();
        b.add(0.0, 2.0);
        b.add(4.0, 2.0);
        a.merge(b);
        assert_eq!(a.skipped(), 2);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn evaluate_reports_skipped_pairs() {
        // A sweep where half the measured communication bandwidths are
        // zero: the breakdown must say how many cells were dropped rather
        // than quietly scoring over the remainder.
        let mut sweep = flat_sweep(10.0, 5.0);
        for point in &mut sweep.sweeps[0].points {
            point.comm_par = 0.0;
        }
        let e = evaluate(
            &Perfect(10.0, 5.0),
            &sweep,
            &[(NumaId::new(0), NumaId::new(0))],
        );
        assert_eq!(e.skipped, 4);
        // The untouched sweep reports zero skipped.
        let clean = evaluate(
            &Perfect(10.0, 5.0),
            &flat_sweep(10.0, 5.0),
            &[(NumaId::new(0), NumaId::new(0))],
        );
        assert_eq!(clean.skipped, 0);
    }

    #[test]
    fn empty_mape_is_not_a_perfect_score() {
        let m = Mape::default();
        assert_eq!(m.percent(), None);
        assert!(m.percent_or_nan().is_nan());
    }

    #[test]
    fn format_percent_renders_nan_as_na() {
        assert_eq!(format_percent(f64::NAN, 6), "   n/a");
        assert_eq!(format_percent(12.345, 6), " 12.35");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Mape::default();
        a.add(10.0, 9.0);
        let mut b = Mape::default();
        b.add(10.0, 7.0);
        a.merge(b);
        assert_eq!(a.count(), 2);
        assert!((a.percent().unwrap() - 20.0).abs() < 1e-9);
    }
}
