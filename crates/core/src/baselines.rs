//! Baseline predictors to compare the paper's model against.
//!
//! The paper has no OSS comparator (no existing tool models comm/compute
//! memory contention), so these baselines are *ablations*: each removes one
//! ingredient of the model, and the evaluation harness scores them on the
//! same measured sweeps. They demonstrate why each ingredient matters:
//!
//! * [`NoContentionBaseline`] — ignores interference entirely (what a
//!   runtime assuming "overlap is free" believes);
//! * [`EqualShareBaseline`] — models the bus threshold but shares capacity
//!   max-min fairly with no CPU priority and no communication floor
//!   (classic queuing-fairness assumption, cf. §II-D);
//! * [`LocalOnlyBaseline`] — the full threshold model but calibrated with a
//!   single (local) instantiation, ablating the NUMA combination of
//!   eqs. 6–7.

use serde::{Deserialize, Serialize};

use mc_topology::NumaId;

use crate::instantiation::{InstantiatedModel, Prediction};
use crate::placement::ContentionModel;
use crate::predictor::BandwidthPredictor;

/// Perfect-overlap baseline: nominal bandwidths everywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoContentionBaseline {
    model: ContentionModel,
}

impl NoContentionBaseline {
    /// Build from a calibrated model (reuses its nominal parameters).
    pub fn new(model: ContentionModel) -> Self {
        NoContentionBaseline { model }
    }
}

impl BandwidthPredictor for NoContentionBaseline {
    fn name(&self) -> &'static str {
        "no-contention"
    }

    fn predict_parallel_bw(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction {
        // "Alone" predictions for both streams: interference is assumed
        // away.
        self.model.predict_alone(n, m_comp, m_comm)
    }
}

/// Threshold-aware but priority-blind baseline: when the combined demand
/// exceeds the capacity `T(n)`, every stream (each core, and the NIC as one
/// more customer) gets an equal max-min share. No guaranteed communication
/// floor, no CPU priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqualShareBaseline {
    model: ContentionModel,
}

impl EqualShareBaseline {
    /// Build from a calibrated model (reuses capacities and nominal
    /// bandwidths).
    pub fn new(model: ContentionModel) -> Self {
        EqualShareBaseline { model }
    }

    /// Max-min split of `capacity` between `n` cores demanding `b_core`
    /// each and one NIC demanding `b_comm`.
    fn equal_share(n: usize, b_core: f64, b_comm: f64, capacity: f64) -> Prediction {
        let total_demand = n as f64 * b_core + b_comm;
        if total_demand <= capacity {
            return Prediction {
                comp: n as f64 * b_core,
                comm: b_comm,
            };
        }
        // Progressive filling with n+1 equal-weight customers.
        let fair = capacity / (n as f64 + 1.0);
        if b_comm <= fair {
            // NIC is satisfied; cores split the rest.
            Prediction {
                comp: (capacity - b_comm).min(n as f64 * b_core),
                comm: b_comm,
            }
        } else if b_core <= fair {
            // Cores are satisfied; NIC takes the leftover.
            let comp = n as f64 * b_core;
            Prediction {
                comp,
                comm: (capacity - comp).min(b_comm),
            }
        } else {
            Prediction {
                comp: fair * n as f64,
                comm: fair,
            }
        }
    }

    fn instantiation_for(&self, numa: NumaId) -> &InstantiatedModel {
        if numa.index() >= self.model.numa_per_socket() {
            self.model.remote()
        } else {
            self.model.local()
        }
    }
}

impl BandwidthPredictor for EqualShareBaseline {
    fn name(&self) -> &'static str {
        "equal-share"
    }

    fn predict_parallel_bw(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction {
        let comp_inst = self.instantiation_for(m_comp);
        let comm_inst = self.instantiation_for(m_comm);
        if m_comp == m_comm {
            let p = comp_inst.params();
            Self::equal_share(
                n,
                p.b_comp_seq,
                comm_inst.params().b_comm_seq,
                comp_inst.total_capacity(n),
            )
        } else {
            Prediction {
                comp: comp_inst.comp_alone(n),
                comm: comm_inst.comm_alone(),
            }
        }
    }
}

/// Single-instantiation ablation: the full threshold model, but the local
/// instantiation is used for every placement (no `M_remote`, no eqs. 6–7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalOnlyBaseline {
    model: ContentionModel,
}

impl LocalOnlyBaseline {
    /// Build from a calibrated model (only its local instantiation is
    /// consulted).
    pub fn new(model: ContentionModel) -> Self {
        LocalOnlyBaseline { model }
    }
}

impl BandwidthPredictor for LocalOnlyBaseline {
    fn name(&self) -> &'static str {
        "local-only"
    }

    fn predict_parallel_bw(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> Prediction {
        let local = self.model.local();
        if m_comp == m_comm {
            local.predict_parallel(n)
        } else {
            Prediction {
                comp: local.comp_alone(n),
                comm: local.comm_alone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_sweeps, BenchConfig};
    use mc_topology::platforms;

    fn model_for(p: &mc_topology::Platform) -> ContentionModel {
        let (local, remote) = calibration_sweeps(p, BenchConfig::exact());
        ContentionModel::calibrate(&p.topology, &local, &remote).unwrap()
    }

    #[test]
    fn no_contention_always_predicts_nominal_comm() {
        let p = platforms::henri();
        let m = model_for(&p);
        let nominal = m.local().comm_alone();
        let b = NoContentionBaseline::new(m);
        for n in 1..=17 {
            let pred = b.predict_parallel_bw(n, NumaId::new(0), NumaId::new(0));
            assert_eq!(pred.comm, nominal);
        }
    }

    #[test]
    fn equal_share_caps_at_capacity() {
        let p = platforms::henri();
        let m = model_for(&p);
        let cap17 = m.local().total_capacity(17);
        let b = EqualShareBaseline::new(m);
        let pred = b.predict_parallel_bw(17, NumaId::new(0), NumaId::new(0));
        assert!(pred.total() <= cap17 + 1e-9);
        // Without a floor the NIC keeps a fair (not minimal) share — more
        // than the true model grants it under heavy compute.
        assert!(pred.comm > 3.0, "{}", pred.comm);
    }

    #[test]
    fn equal_share_below_threshold_is_nominal() {
        let p = platforms::henri();
        let m = model_for(&p);
        let b = EqualShareBaseline::new(m.clone());
        let pred = b.predict_parallel_bw(2, NumaId::new(0), NumaId::new(0));
        assert!((pred.comp - 2.0 * m.local().params().b_comp_seq).abs() < 1e-9);
        assert!((pred.comm - m.local().params().b_comm_seq).abs() < 1e-9);
    }

    #[test]
    fn local_only_misses_remote_behaviour() {
        let p = platforms::diablo();
        let m = model_for(&p);
        let remote_nominal = m.remote().params().b_comm_seq;
        let b = LocalOnlyBaseline::new(m);
        // On diablo the remote comm bandwidth is ~2x the local one; the
        // local-only ablation cannot know that.
        let pred = b.predict_parallel_bw(1, NumaId::new(1), NumaId::new(1));
        assert!(pred.comm < remote_nominal * 0.7);
    }

    #[test]
    fn equal_share_handles_small_nic_demand() {
        // NIC demand below the fair share: cores split the remainder.
        let pred = EqualShareBaseline::equal_share(4, 10.0, 2.0, 20.0);
        assert!((pred.comm - 2.0).abs() < 1e-9);
        assert!((pred.comp - 18.0).abs() < 1e-9);
    }

    #[test]
    fn equal_share_handles_small_core_demand() {
        // Core demand below the fair share: NIC takes the leftover.
        let pred = EqualShareBaseline::equal_share(2, 1.0, 50.0, 12.0);
        assert!((pred.comp - 2.0).abs() < 1e-9);
        assert!((pred.comm - 10.0).abs() < 1e-9);
    }
}
