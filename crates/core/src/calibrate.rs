//! Parameter extraction from benchmark sweeps (§IV-A2).
//!
//! "Once the performance metrics […] are extracted from benchmark outputs,
//! the evolution of the bandwidths over the number of computing cores is
//! analyzed (it mostly looks for minima and maxima) and the parameters of
//! the model […] are computed."

use mc_membench::record::PlacementSweep;

use crate::params::{ModelParams, ParamError};

/// Errors during calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// The sweep has no points.
    EmptySweep,
    /// The sweep lacks the single-core measurement needed for `Bcomp_seq`.
    MissingSingleCore,
    /// The extracted parameters are structurally invalid.
    Invalid(ParamError),
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::EmptySweep => write!(f, "cannot calibrate from an empty sweep"),
            CalibrationError::MissingSingleCore => {
                write!(f, "sweep lacks the n = 1 point needed for Bcomp_seq")
            }
            CalibrationError::Invalid(e) => write!(f, "extracted parameters invalid: {e}"),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Extract the model parameters from one placement sweep (the placement
/// must be one of the two calibration configurations — both buffers on the
/// same NUMA node — for the parameters to mean what the model expects).
pub fn calibrate(sweep: &PlacementSweep) -> Result<ModelParams, CalibrationError> {
    if sweep.points.is_empty() {
        return Err(CalibrationError::EmptySweep);
    }
    let mut points = sweep.points.clone();
    points.sort_by_key(|p| p.n_cores);

    let b_comp_seq = points
        .iter()
        .find(|p| p.n_cores == 1)
        .ok_or(CalibrationError::MissingSingleCore)?
        .comp_alone;

    // (Nmax_seq, Tmax_seq): peak of the compute-alone curve.
    let (n_max_seq, t_max_seq) = points.iter().map(|p| (p.n_cores, p.comp_alone)).fold(
        (1usize, f64::MIN),
        |best, (n, v)| {
            if v > best.1 {
                (n, v)
            } else {
                best
            }
        },
    );

    // (Nmax_par, Tmax_par): peak of the stacked parallel curve, constrained
    // to the left of Nmax_seq (the model's shape assumes the parallel peak
    // is reached with fewer cores; measurement noise can move the raw
    // argmax past it).
    let (mut n_max_par, mut t_max_par) = points.iter().map(|p| (p.n_cores, p.total_par())).fold(
        (1usize, f64::MIN),
        |best, (n, v)| {
            if v > best.1 {
                (n, v)
            } else {
                best
            }
        },
    );
    if n_max_par > n_max_seq {
        n_max_par = n_max_seq;
        t_max_par = points
            .iter()
            .find(|p| p.n_cores == n_max_seq)
            .map(|p| p.total_par())
            .unwrap_or(t_max_par);
    }

    // Tmax2_par: total parallel bandwidth at Nmax_seq cores.
    let t_max2_par = points
        .iter()
        .find(|p| p.n_cores == n_max_seq)
        .map(|p| p.total_par())
        .unwrap_or(t_max_par)
        .min(t_max_par);

    // Slopes.
    let delta_l = if n_max_seq > n_max_par {
        ((t_max_par - t_max2_par) / (n_max_seq - n_max_par) as f64).max(0.0)
    } else {
        0.0
    };
    let last = points.last().expect("non-empty");
    let delta_r = if last.n_cores > n_max_seq {
        ((t_max2_par - last.total_par()) / (last.n_cores - n_max_seq) as f64).max(0.0)
    } else {
        0.0
    };

    // Nominal and worst-case communication bandwidth.
    let b_comm_seq = sweep.comm_alone_mean();
    let alpha = points
        .iter()
        .map(|p| p.comm_par / b_comm_seq)
        .fold(f64::INFINITY, f64::min)
        .clamp(1e-6, 1.0);

    let params = ModelParams {
        n_max_par,
        t_max_par,
        n_max_seq,
        t_max_seq,
        t_max2_par,
        delta_l,
        delta_r,
        b_comp_seq,
        b_comm_seq,
        alpha,
    };
    params.validate().map_err(CalibrationError::Invalid)?;
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiation::InstantiatedModel;
    use crate::params::reference_params;
    use mc_membench::record::SweepPoint;
    use mc_membench::{BenchConfig, BenchRunner};
    use mc_topology::{platforms, NumaId};

    /// Generate a noiseless sweep from a known model; calibration must
    /// recover the original parameters.
    fn synthetic_sweep(params: crate::params::ModelParams, n_max: usize) -> PlacementSweep {
        let m = InstantiatedModel::new(params);
        PlacementSweep {
            m_comp: NumaId::new(0),
            m_comm: NumaId::new(0),
            points: (1..=n_max)
                .map(|n| {
                    let par = m.predict_parallel(n);
                    SweepPoint {
                        n_cores: n,
                        comp_alone: m.comp_alone(n),
                        comm_alone: m.comm_alone(),
                        comp_par: par.comp,
                        comm_par: par.comm,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips_model_generated_curves() {
        let truth = reference_params();
        let sweep = synthetic_sweep(truth, 17);
        let got = calibrate(&sweep).unwrap();
        // Equation (8) clamps comp_alone by T(n), so the recovered peak can
        // land one core later than the generating parameter; values must
        // agree within a slope step.
        assert!(got.n_max_seq.abs_diff(truth.n_max_seq) <= 1);
        assert!((got.t_max_seq - truth.t_max_seq).abs() < truth.delta_l + 1e-9);
        assert!((got.b_comp_seq - truth.b_comp_seq).abs() < 1e-9);
        assert!((got.b_comm_seq - truth.b_comm_seq).abs() < 1e-9);
        assert!((got.alpha - truth.alpha).abs() < 1e-9);
        assert!((got.t_max2_par - truth.t_max2_par).abs() < truth.delta_r + 1e-9);
        // Tmax_par is a *capacity*: the generated curve only realises it up
        // to the comm demand, so the recovered peak may sit slightly below.
        assert!(got.t_max_par <= truth.t_max_par + 1e-9);
        assert!(got.t_max_par > truth.t_max_par - 1.0);
        assert!((got.delta_r - truth.delta_r).abs() < 0.2);
    }

    #[test]
    fn calibration_is_idempotent() {
        // calibrate ∘ generate must be a fixed point: predicting curves
        // from calibrated parameters and re-calibrating yields the same
        // parameters.
        let once = calibrate(&synthetic_sweep(reference_params(), 17)).unwrap();
        let twice = calibrate(&synthetic_sweep(once, 17)).unwrap();
        let thrice = calibrate(&synthetic_sweep(twice, 17)).unwrap();
        assert_eq!(twice, thrice);
    }

    #[test]
    fn calibrates_henri_local_sensibly() {
        let p = platforms::henri();
        let runner = BenchRunner::new(&p, BenchConfig::exact());
        let sweep = runner.run_placement(NumaId::new(0), NumaId::new(0));
        let params = calibrate(&sweep).unwrap();
        assert!((params.b_comp_seq - 5.6).abs() < 1e-6);
        assert!(
            (10.5..12.0).contains(&params.b_comm_seq),
            "{}",
            params.b_comm_seq
        );
        assert!((params.alpha - 0.25).abs() < 0.02, "{}", params.alpha);
        assert!(params.n_max_par <= params.n_max_seq);
        assert!(params.t_max_par <= 81.0);
    }

    #[test]
    fn noisy_calibration_stays_close_to_exact() {
        let p = platforms::henri();
        let exact = calibrate(
            &BenchRunner::new(&p, BenchConfig::exact())
                .run_placement(NumaId::new(0), NumaId::new(0)),
        )
        .unwrap();
        let noisy = calibrate(
            &BenchRunner::new(&p, BenchConfig::default())
                .run_placement(NumaId::new(0), NumaId::new(0)),
        )
        .unwrap();
        assert!((noisy.b_comp_seq - exact.b_comp_seq).abs() / exact.b_comp_seq < 0.05);
        assert!((noisy.b_comm_seq - exact.b_comm_seq).abs() / exact.b_comm_seq < 0.05);
        assert!((noisy.t_max_par - exact.t_max_par).abs() / exact.t_max_par < 0.05);
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let sweep = PlacementSweep {
            m_comp: NumaId::new(0),
            m_comm: NumaId::new(0),
            points: vec![],
        };
        assert_eq!(calibrate(&sweep), Err(CalibrationError::EmptySweep));
    }

    #[test]
    fn missing_single_core_is_rejected() {
        let mut sweep = synthetic_sweep(reference_params(), 6);
        sweep.points.retain(|p| p.n_cores != 1);
        assert_eq!(calibrate(&sweep), Err(CalibrationError::MissingSingleCore));
    }

    #[test]
    fn unsorted_points_are_handled() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        let sorted = calibrate(&sweep).unwrap();
        sweep.points.reverse();
        let got = calibrate(&sweep).unwrap();
        assert_eq!(got, sorted);
    }

    #[test]
    fn occigen_alpha_is_one() {
        // DMA is never throttled on occigen → worst-case comm share ≈ 1.
        let p = platforms::occigen();
        let runner = BenchRunner::new(&p, BenchConfig::exact());
        let sweep = runner.run_placement(NumaId::new(0), NumaId::new(0));
        let params = calibrate(&sweep).unwrap();
        assert!(params.alpha > 0.99, "{}", params.alpha);
    }
}
