//! Parameter extraction from benchmark sweeps (§IV-A2).
//!
//! "Once the performance metrics […] are extracted from benchmark outputs,
//! the evolution of the bandwidths over the number of computing cores is
//! analyzed (it mostly looks for minima and maxima) and the parameters of
//! the model […] are computed."

use mc_membench::record::{PlacementSweep, SweepColumn};

use crate::params::{ModelParams, ParamError};

/// Floor applied to the extracted `α` when the parallel communication
/// bandwidth measured as (numerically) zero: the model stays valid and
/// predicts a starved-but-alive NIC instead of rejecting the sweep.
/// Documented fallback — see DESIGN.md §9.
const ALPHA_FLOOR: f64 = 1e-6;

/// Errors during calibration. Every degenerate-sweep shape maps to its own
/// variant so callers (and CLI users) can tell *which* way the input data
/// was broken.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// The sweep has no points.
    EmptySweep,
    /// The sweep has fewer than two distinct core counts — no slope or
    /// peak structure can be extracted.
    TooFewPoints {
        /// Distinct core counts present.
        got: usize,
    },
    /// The sweep lacks the single-core measurement needed for `Bcomp_seq`.
    MissingSingleCore,
    /// A measurement is NaN or infinite.
    NonFinite {
        /// The offending bandwidth column.
        column: SweepColumn,
        /// Core count of the offending point.
        n_cores: usize,
    },
    /// The communications-alone column averages to a non-positive
    /// bandwidth (`Bcomm_seq <= 0`), so `α = comm_par / Bcomm_seq` is
    /// undefined.
    NoCommBandwidth {
        /// The degenerate mean.
        b_comm_seq: f64,
    },
    /// Two points share a core count but disagree on the measured values.
    DuplicateCores {
        /// The conflicting core count.
        n_cores: usize,
    },
    /// The extracted parameters are structurally invalid.
    Invalid(ParamError),
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::EmptySweep => write!(f, "cannot calibrate from an empty sweep"),
            CalibrationError::TooFewPoints { got } => write!(
                f,
                "sweep has only {got} distinct core count(s); calibration needs at least 2"
            ),
            CalibrationError::MissingSingleCore => {
                write!(f, "sweep lacks the n = 1 point needed for Bcomp_seq")
            }
            CalibrationError::NonFinite { column, n_cores } => {
                write!(f, "non-finite {column} measurement at n = {n_cores} cores")
            }
            CalibrationError::NoCommBandwidth { b_comm_seq } => write!(
                f,
                "communications-alone bandwidth is degenerate (Bcomm_seq = {b_comm_seq}); \
                 alpha would be undefined"
            ),
            CalibrationError::DuplicateCores { n_cores } => write!(
                f,
                "conflicting duplicate measurements at n = {n_cores} cores"
            ),
            CalibrationError::Invalid(e) => write!(f, "extracted parameters invalid: {e}"),
        }
    }
}

impl CalibrationError {
    /// Stable machine-readable reason, used as the `reason` tag on the
    /// `calibrate.rejects` counter.
    pub fn reason(&self) -> &'static str {
        match self {
            CalibrationError::EmptySweep => "empty-sweep",
            CalibrationError::TooFewPoints { .. } => "too-few-points",
            CalibrationError::MissingSingleCore => "missing-single-core",
            CalibrationError::NonFinite { .. } => "non-finite",
            CalibrationError::NoCommBandwidth { .. } => "no-comm-bandwidth",
            CalibrationError::DuplicateCores { .. } => "duplicate-cores",
            CalibrationError::Invalid(_) => "invalid-params",
        }
    }
}

impl std::error::Error for CalibrationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibrationError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Which documented repairs [`checked_points`] applied to a sweep.
#[derive(Debug, Clone, Copy, Default)]
struct Repairs {
    /// Points arrived out of core-count order and were sorted.
    unsorted: bool,
    /// Identical duplicate points collapsed to one.
    duplicates_collapsed: u64,
}

/// Validate and normalise a sweep's points for calibration.
///
/// Repairs (documented fallbacks):
/// - out-of-order points are sorted by core count (producers may emit rows
///   in any order);
/// - *identical* duplicate points are collapsed to one.
///
/// Rejections: empty sweeps, NaN/infinite measurements, conflicting
/// duplicates, and fewer than two distinct core counts.
fn checked_points(
    sweep: &PlacementSweep,
) -> Result<(Vec<mc_membench::record::SweepPoint>, Repairs), CalibrationError> {
    let mut repairs = Repairs::default();
    if sweep.points.is_empty() {
        return Err(CalibrationError::EmptySweep);
    }
    for p in &sweep.points {
        for column in SweepColumn::ALL {
            if !column.get(p).is_finite() {
                return Err(CalibrationError::NonFinite {
                    column,
                    n_cores: p.n_cores,
                });
            }
        }
    }
    repairs.unsorted = sweep.points.windows(2).any(|w| w[0].n_cores > w[1].n_cores);
    let mut points = sweep.points.clone();
    points.sort_by_key(|p| p.n_cores);
    let mut deduped: Vec<mc_membench::record::SweepPoint> = Vec::with_capacity(points.len());
    for p in points {
        match deduped.last() {
            Some(prev) if prev.n_cores == p.n_cores => {
                if *prev != p {
                    return Err(CalibrationError::DuplicateCores { n_cores: p.n_cores });
                }
                // Identical duplicate: keep one copy.
                repairs.duplicates_collapsed += 1;
            }
            _ => deduped.push(p),
        }
    }
    if deduped.len() < 2 {
        return Err(CalibrationError::TooFewPoints { got: deduped.len() });
    }
    Ok((deduped, repairs))
}

/// Extract the model parameters from one placement sweep (the placement
/// must be one of the two calibration configurations — both buffers on the
/// same NUMA node — for the parameters to mean what the model expects).
pub fn calibrate(sweep: &PlacementSweep) -> Result<ModelParams, CalibrationError> {
    let tags = [
        ("m_comp", mc_obs::TagValue::U64(sweep.m_comp.0 as u64)),
        ("m_comm", mc_obs::TagValue::U64(sweep.m_comm.0 as u64)),
    ];
    let _span = mc_obs::span("calibrate", &tags);
    let result = calibrate_inner(sweep);
    if let Some(rec) = mc_obs::recorder() {
        if let Err(e) = &result {
            rec.add(
                "calibrate.rejects",
                &[("reason", mc_obs::TagValue::Str(e.reason()))],
                1,
            );
        }
    }
    result
}

fn calibrate_inner(sweep: &PlacementSweep) -> Result<ModelParams, CalibrationError> {
    let (points, repairs) = checked_points(sweep)?;
    if let Some(rec) = mc_obs::recorder() {
        if repairs.unsorted {
            rec.add(
                "calibrate.repairs",
                &[("rule", mc_obs::TagValue::Str("unsorted"))],
                1,
            );
        }
        if repairs.duplicates_collapsed > 0 {
            rec.add(
                "calibrate.repairs",
                &[("rule", mc_obs::TagValue::Str("duplicate-collapsed"))],
                repairs.duplicates_collapsed,
            );
        }
    }

    let b_comp_seq = points
        .iter()
        .find(|p| p.n_cores == 1)
        .ok_or(CalibrationError::MissingSingleCore)?
        .comp_alone;

    // (Nmax_seq, Tmax_seq): peak of the compute-alone curve.
    let (n_max_seq, t_max_seq) = points.iter().map(|p| (p.n_cores, p.comp_alone)).fold(
        (1usize, f64::MIN),
        |best, (n, v)| {
            if v > best.1 {
                (n, v)
            } else {
                best
            }
        },
    );

    // (Nmax_par, Tmax_par): peak of the stacked parallel curve, constrained
    // to the left of Nmax_seq (the model's shape assumes the parallel peak
    // is reached with fewer cores; measurement noise can move the raw
    // argmax past it).
    let (mut n_max_par, mut t_max_par) = points.iter().map(|p| (p.n_cores, p.total_par())).fold(
        (1usize, f64::MIN),
        |best, (n, v)| {
            if v > best.1 {
                (n, v)
            } else {
                best
            }
        },
    );
    if n_max_par > n_max_seq {
        n_max_par = n_max_seq;
        t_max_par = points
            .iter()
            .find(|p| p.n_cores == n_max_seq)
            .map(|p| p.total_par())
            .unwrap_or(t_max_par);
    }

    // Tmax2_par: total parallel bandwidth at Nmax_seq cores.
    let t_max2_par = points
        .iter()
        .find(|p| p.n_cores == n_max_seq)
        .map(|p| p.total_par())
        .unwrap_or(t_max_par)
        .min(t_max_par);

    // Slopes.
    let delta_l = if n_max_seq > n_max_par {
        ((t_max_par - t_max2_par) / (n_max_seq - n_max_par) as f64).max(0.0)
    } else {
        0.0
    };
    let last = points[points.len() - 1];
    let delta_r = if last.n_cores > n_max_seq {
        ((t_max2_par - last.total_par()) / (last.n_cores - n_max_seq) as f64).max(0.0)
    } else {
        0.0
    };

    // Nominal and worst-case communication bandwidth. `Bcomm_seq` must be
    // strictly positive before `alpha = comm_par / Bcomm_seq` is formed:
    // a zeroed comm_alone column would otherwise yield NaN/∞ ratios that
    // the clamp silently masks.
    let b_comm_seq = points.iter().map(|p| p.comm_alone).sum::<f64>() / points.len() as f64;
    // (NaN means were rejected by the finiteness scan above.)
    if b_comm_seq <= 0.0 {
        return Err(CalibrationError::NoCommBandwidth { b_comm_seq });
    }
    let alpha = points
        .iter()
        .map(|p| p.comm_par / b_comm_seq)
        .fold(f64::INFINITY, f64::min)
        .clamp(ALPHA_FLOOR, 1.0);

    let params = ModelParams {
        n_max_par,
        t_max_par,
        n_max_seq,
        t_max_seq,
        t_max2_par,
        delta_l,
        delta_r,
        b_comp_seq,
        b_comm_seq,
        alpha,
    };
    params.validate().map_err(CalibrationError::Invalid)?;
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiation::InstantiatedModel;
    use crate::params::reference_params;
    use mc_membench::record::SweepPoint;
    use mc_membench::{BenchConfig, BenchRunner};
    use mc_topology::{platforms, NumaId};

    /// Generate a noiseless sweep from a known model; calibration must
    /// recover the original parameters.
    fn synthetic_sweep(params: crate::params::ModelParams, n_max: usize) -> PlacementSweep {
        let m = InstantiatedModel::new(params);
        PlacementSweep {
            m_comp: NumaId::new(0),
            m_comm: NumaId::new(0),
            points: (1..=n_max)
                .map(|n| {
                    let par = m.predict_parallel(n);
                    SweepPoint {
                        n_cores: n,
                        comp_alone: m.comp_alone(n),
                        comm_alone: m.comm_alone(),
                        comp_par: par.comp,
                        comm_par: par.comm,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips_model_generated_curves() {
        let truth = reference_params();
        let sweep = synthetic_sweep(truth, 17);
        let got = calibrate(&sweep).unwrap();
        // Equation (8) clamps comp_alone by T(n), so the recovered peak can
        // land one core later than the generating parameter; values must
        // agree within a slope step.
        assert!(got.n_max_seq.abs_diff(truth.n_max_seq) <= 1);
        assert!((got.t_max_seq - truth.t_max_seq).abs() < truth.delta_l + 1e-9);
        assert!((got.b_comp_seq - truth.b_comp_seq).abs() < 1e-9);
        assert!((got.b_comm_seq - truth.b_comm_seq).abs() < 1e-9);
        assert!((got.alpha - truth.alpha).abs() < 1e-9);
        assert!((got.t_max2_par - truth.t_max2_par).abs() < truth.delta_r + 1e-9);
        // Tmax_par is a *capacity*: the generated curve only realises it up
        // to the comm demand, so the recovered peak may sit slightly below.
        assert!(got.t_max_par <= truth.t_max_par + 1e-9);
        assert!(got.t_max_par > truth.t_max_par - 1.0);
        assert!((got.delta_r - truth.delta_r).abs() < 0.2);
    }

    #[test]
    fn calibration_is_idempotent() {
        // calibrate ∘ generate must be a fixed point: predicting curves
        // from calibrated parameters and re-calibrating yields the same
        // parameters.
        let once = calibrate(&synthetic_sweep(reference_params(), 17)).unwrap();
        let twice = calibrate(&synthetic_sweep(once, 17)).unwrap();
        let thrice = calibrate(&synthetic_sweep(twice, 17)).unwrap();
        assert_eq!(twice, thrice);
    }

    #[test]
    fn calibrates_henri_local_sensibly() {
        let p = platforms::henri();
        let runner = BenchRunner::new(&p, BenchConfig::exact());
        let sweep = runner.run_placement(NumaId::new(0), NumaId::new(0));
        let params = calibrate(&sweep).unwrap();
        assert!((params.b_comp_seq - 5.6).abs() < 1e-6);
        assert!(
            (10.5..12.0).contains(&params.b_comm_seq),
            "{}",
            params.b_comm_seq
        );
        assert!((params.alpha - 0.25).abs() < 0.02, "{}", params.alpha);
        assert!(params.n_max_par <= params.n_max_seq);
        assert!(params.t_max_par <= 81.0);
    }

    #[test]
    fn noisy_calibration_stays_close_to_exact() {
        let p = platforms::henri();
        let exact = calibrate(
            &BenchRunner::new(&p, BenchConfig::exact())
                .run_placement(NumaId::new(0), NumaId::new(0)),
        )
        .unwrap();
        let noisy = calibrate(
            &BenchRunner::new(&p, BenchConfig::default())
                .run_placement(NumaId::new(0), NumaId::new(0)),
        )
        .unwrap();
        assert!((noisy.b_comp_seq - exact.b_comp_seq).abs() / exact.b_comp_seq < 0.05);
        assert!((noisy.b_comm_seq - exact.b_comm_seq).abs() / exact.b_comm_seq < 0.05);
        assert!((noisy.t_max_par - exact.t_max_par).abs() / exact.t_max_par < 0.05);
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let sweep = PlacementSweep {
            m_comp: NumaId::new(0),
            m_comm: NumaId::new(0),
            points: vec![],
        };
        assert_eq!(calibrate(&sweep), Err(CalibrationError::EmptySweep));
    }

    #[test]
    fn missing_single_core_is_rejected() {
        let mut sweep = synthetic_sweep(reference_params(), 6);
        sweep.points.retain(|p| p.n_cores != 1);
        assert_eq!(calibrate(&sweep), Err(CalibrationError::MissingSingleCore));
    }

    #[test]
    fn unsorted_points_are_handled() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        let sorted = calibrate(&sweep).unwrap();
        sweep.points.reverse();
        let got = calibrate(&sweep).unwrap();
        assert_eq!(got, sorted);
    }

    #[test]
    fn single_point_sweep_is_rejected() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        sweep.points.truncate(1);
        assert_eq!(
            calibrate(&sweep),
            Err(CalibrationError::TooFewPoints { got: 1 })
        );
    }

    #[test]
    fn nan_poisoned_sweep_is_rejected_with_location() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        sweep.points[4].comp_par = f64::NAN;
        assert_eq!(
            calibrate(&sweep),
            Err(CalibrationError::NonFinite {
                column: mc_membench::SweepColumn::CompPar,
                n_cores: 5,
            })
        );
        let mut sweep = synthetic_sweep(reference_params(), 17);
        sweep.points[0].comm_alone = f64::INFINITY;
        assert_eq!(
            calibrate(&sweep),
            Err(CalibrationError::NonFinite {
                column: mc_membench::SweepColumn::CommAlone,
                n_cores: 1,
            })
        );
    }

    #[test]
    fn all_nan_compute_column_is_rejected_not_folded() {
        // Before the finiteness scan, an all-NaN comp_alone column slid
        // through the f64::MIN fold and produced garbage peaks.
        let mut sweep = synthetic_sweep(reference_params(), 17);
        for p in &mut sweep.points {
            p.comp_alone = f64::NAN;
        }
        assert!(matches!(
            calibrate(&sweep),
            Err(CalibrationError::NonFinite {
                column: mc_membench::SweepColumn::CompAlone,
                ..
            })
        ));
    }

    #[test]
    fn zeroed_comm_column_is_rejected_before_alpha() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        for p in &mut sweep.points {
            p.comm_alone = 0.0;
        }
        assert_eq!(
            calibrate(&sweep),
            Err(CalibrationError::NoCommBandwidth { b_comm_seq: 0.0 })
        );
    }

    #[test]
    fn zeroed_compute_column_yields_invalid_params() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        for p in &mut sweep.points {
            p.comp_alone = 0.0;
        }
        assert!(matches!(
            calibrate(&sweep),
            Err(CalibrationError::Invalid(_))
        ));
    }

    #[test]
    fn conflicting_duplicates_are_rejected() {
        let mut sweep = synthetic_sweep(reference_params(), 17);
        let mut dup = sweep.points[5];
        dup.comp_alone *= 1.5;
        sweep.points.push(dup);
        assert_eq!(
            calibrate(&sweep),
            Err(CalibrationError::DuplicateCores { n_cores: 6 })
        );
    }

    #[test]
    fn identical_duplicates_are_collapsed() {
        let clean = synthetic_sweep(reference_params(), 17);
        let expected = calibrate(&clean).unwrap();
        let mut sweep = clean.clone();
        sweep.points.push(sweep.points[5]);
        sweep.points.push(sweep.points[9]);
        assert_eq!(calibrate(&sweep), Ok(expected));
    }

    #[test]
    fn every_degenerate_error_has_a_distinct_message() {
        let errors = [
            CalibrationError::EmptySweep,
            CalibrationError::TooFewPoints { got: 1 },
            CalibrationError::MissingSingleCore,
            CalibrationError::NonFinite {
                column: mc_membench::SweepColumn::CompPar,
                n_cores: 5,
            },
            CalibrationError::NoCommBandwidth { b_comm_seq: 0.0 },
            CalibrationError::DuplicateCores { n_cores: 6 },
            CalibrationError::Invalid(crate::params::ParamError::NonPositive("t_max_seq")),
        ];
        let messages: std::collections::BTreeSet<String> =
            errors.iter().map(|e| e.to_string()).collect();
        assert_eq!(messages.len(), errors.len());
    }

    #[test]
    fn occigen_alpha_is_one() {
        // DMA is never throttled on occigen → worst-case comm share ≈ 1.
        let p = platforms::occigen();
        let runner = BenchRunner::new(&p, BenchConfig::exact());
        let sweep = runner.run_placement(NumaId::new(0), NumaId::new(0));
        let params = calibrate(&sweep).unwrap();
        assert!(params.alpha > 0.99, "{}", params.alpha);
    }
}
