//! Plain-text persistence for calibrated models.
//!
//! A calibrated model is ten numbers per locality class plus a little
//! topology context — exactly the kind of artefact users want to archive
//! next to their benchmark CSVs and reload later without re-measuring. The
//! format is a minimal `key = value` text file (one section per
//! instantiation), kept hand-rolled so the dependency set stays at the
//! approved crates.

use std::fmt::Write as _;

use mc_topology::NumaId;

use crate::instantiation::InstantiatedModel;
use crate::params::ModelParams;
use crate::placement::ContentionModel;

/// Errors when parsing a persisted model.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// A required key is missing from a section.
    MissingKey(&'static str),
    /// A value failed to parse (line number, 1-based).
    BadValue(usize),
    /// A section header is missing or unknown.
    BadSection(usize),
    /// The parsed parameters are structurally invalid.
    Invalid(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::MissingKey(k) => write!(f, "missing key {k}"),
            PersistError::BadValue(line) => write!(f, "bad value at line {line}"),
            PersistError::BadSection(line) => write!(f, "bad section at line {line}"),
            PersistError::Invalid(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn write_params(out: &mut String, section: &str, p: &ModelParams) {
    let _ = writeln!(out, "[{section}]");
    let _ = writeln!(out, "n_max_par = {}", p.n_max_par);
    let _ = writeln!(out, "t_max_par = {}", p.t_max_par);
    let _ = writeln!(out, "n_max_seq = {}", p.n_max_seq);
    let _ = writeln!(out, "t_max_seq = {}", p.t_max_seq);
    let _ = writeln!(out, "t_max2_par = {}", p.t_max2_par);
    let _ = writeln!(out, "delta_l = {}", p.delta_l);
    let _ = writeln!(out, "delta_r = {}", p.delta_r);
    let _ = writeln!(out, "b_comp_seq = {}", p.b_comp_seq);
    let _ = writeln!(out, "b_comm_seq = {}", p.b_comm_seq);
    let _ = writeln!(out, "alpha = {}", p.alpha);
}

/// Serialise a calibrated model to the text format.
pub fn model_to_text(model: &ContentionModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# memory-contention calibrated model");
    let _ = writeln!(out, "[meta]");
    let _ = writeln!(out, "numa_per_socket = {}", model.numa_per_socket());
    let _ = writeln!(out, "numa_count = {}", model.placements().len().isqrt());
    write_params(&mut out, "local", model.local().params());
    write_params(&mut out, "remote", model.remote().params());
    out
}

#[derive(Default)]
struct RawSection {
    entries: Vec<(String, f64)>,
}

impl RawSection {
    fn get(&self, key: &'static str) -> Result<f64, PersistError> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .ok_or(PersistError::MissingKey(key))
    }

    fn params(&self) -> Result<ModelParams, PersistError> {
        let p = ModelParams {
            n_max_par: self.get("n_max_par")? as usize,
            t_max_par: self.get("t_max_par")?,
            n_max_seq: self.get("n_max_seq")? as usize,
            t_max_seq: self.get("t_max_seq")?,
            t_max2_par: self.get("t_max2_par")?,
            delta_l: self.get("delta_l")?,
            delta_r: self.get("delta_r")?,
            b_comp_seq: self.get("b_comp_seq")?,
            b_comm_seq: self.get("b_comm_seq")?,
            alpha: self.get("alpha")?,
        };
        p.validate()
            .map_err(|e| PersistError::Invalid(e.to_string()))?;
        Ok(p)
    }
}

/// Parse the text format back into a model.
pub fn model_from_text(text: &str) -> Result<ContentionModel, PersistError> {
    let mut meta = RawSection::default();
    let mut local = RawSection::default();
    let mut remote = RawSection::default();
    let mut current: Option<&mut RawSection> = None;

    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            current = match section {
                "meta" => Some(&mut meta),
                "local" => Some(&mut local),
                "remote" => Some(&mut remote),
                _ => return Err(PersistError::BadSection(idx + 1)),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(PersistError::BadValue(idx + 1));
        };
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| PersistError::BadValue(idx + 1))?;
        // `str::parse::<f64>` happily accepts "NaN"/"inf"; a persisted
        // model must never smuggle non-finite parameters past the
        // validation `from_csv` performs on fresh data.
        if !value.is_finite() {
            return Err(PersistError::BadValue(idx + 1));
        }
        match current.as_deref_mut() {
            Some(section) => section.entries.push((key.trim().to_string(), value)),
            None => return Err(PersistError::BadSection(idx + 1)),
        }
    }

    let numa_per_socket = meta.get("numa_per_socket")? as usize;
    let numa_count = meta.get("numa_count")? as usize;
    if numa_per_socket == 0 || numa_count == 0 || !numa_count.is_multiple_of(numa_per_socket) {
        return Err(PersistError::Invalid(format!(
            "inconsistent topology: {numa_count} nodes, {numa_per_socket} per socket"
        )));
    }
    Ok(ContentionModel::from_parts(
        InstantiatedModel::new(local.params()?),
        InstantiatedModel::new(remote.params()?),
        numa_per_socket,
        numa_count,
        (NumaId::new(0), NumaId::new(0)),
        (
            NumaId::new(numa_per_socket as u16),
            NumaId::new(numa_per_socket as u16),
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_sweeps, BenchConfig};
    use mc_topology::platforms;

    fn model() -> ContentionModel {
        let p = platforms::henri_subnuma();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
        ContentionModel::calibrate(&p.topology, &local, &remote).unwrap()
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let m = model();
        let text = model_to_text(&m);
        let back = model_from_text(&text).unwrap();
        for (m_comp, m_comm) in m.placements() {
            for n in [1usize, 6, 12, 17] {
                let a = m.predict(n, m_comp, m_comm);
                let b = back.predict(n, m_comp, m_comm);
                assert!((a.comp - b.comp).abs() < 1e-9, "comp at n={n}");
                assert!((a.comm - b.comm).abs() < 1e-9, "comm at n={n}");
            }
        }
    }

    #[test]
    fn text_is_human_readable() {
        let text = model_to_text(&model());
        assert!(text.contains("[local]"));
        assert!(text.contains("[remote]"));
        assert!(text.contains("b_comm_seq = "));
        assert!(text.contains("numa_per_socket = 2"));
    }

    #[test]
    fn missing_key_is_reported() {
        let text = model_to_text(&model()).replace("alpha = ", "omega = ");
        assert_eq!(
            model_from_text(&text),
            Err(PersistError::MissingKey("alpha"))
        );
    }

    #[test]
    fn non_finite_values_are_rejected_with_line_numbers() {
        // "NaN"/"inf" parse successfully via str::parse::<f64>; the format
        // must reject them in every section, pointing at the line.
        for bad in ["NaN", "nan", "inf", "-inf", "infinity"] {
            let text = format!("[meta]\nnuma_per_socket = {bad}\n");
            assert_eq!(
                model_from_text(&text),
                Err(PersistError::BadValue(2)),
                "meta value {bad:?} must be rejected"
            );
        }
        let text = model_to_text(&model())
            .lines()
            .map(|l| {
                if l.starts_with("alpha = ") {
                    "alpha = NaN".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("alpha = NaN"), "substitution must hit");
        let line = text
            .lines()
            .position(|l| l.starts_with("alpha = NaN"))
            .unwrap()
            + 1;
        assert_eq!(model_from_text(&text), Err(PersistError::BadValue(line)));
    }

    #[test]
    fn round_trip_rejects_injected_infinities() {
        let text = model_to_text(&model());
        for field in ["t_max_par = ", "b_comm_seq = ", "delta_r = "] {
            let broken = text
                .lines()
                .map(|l| {
                    if l.starts_with(field) {
                        format!("{field}inf")
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            assert!(
                matches!(model_from_text(&broken), Err(PersistError::BadValue(_))),
                "{field}inf must not round-trip"
            );
        }
    }

    #[test]
    fn garbage_value_is_located() {
        let text = "[meta]\nnuma_per_socket = spaghetti\n";
        assert_eq!(model_from_text(text), Err(PersistError::BadValue(2)));
    }

    #[test]
    fn unknown_section_is_rejected() {
        let text = "[surprise]\nx = 1\n";
        assert_eq!(model_from_text(text), Err(PersistError::BadSection(1)));
    }

    #[test]
    fn key_before_any_section_is_rejected() {
        let text = "x = 1\n";
        assert_eq!(model_from_text(text), Err(PersistError::BadSection(1)));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let text = model_to_text(&model());
        // Force alpha out of range in both sections.
        let broken = text
            .lines()
            .map(|l| {
                if l.starts_with("alpha = ") {
                    "alpha = 7.0".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            model_from_text(&broken),
            Err(PersistError::Invalid(_))
        ));
    }
}
