//! Calibration robustness: how stable are the extracted parameters under
//! measurement noise?
//!
//! The paper notes that "higher prediction errors come most often from
//! unstable input data" (§IV-C). This module quantifies that: calibrate the
//! same platform across many noise realisations and report the spread of
//! every parameter, plus the spread of downstream predictions. Users can
//! then decide whether one calibration run is enough for their machine or
//! whether to average several.

use serde::{Deserialize, Serialize};

use mc_membench::record::PlacementSweep;

use crate::calibrate::{calibrate, CalibrationError};
use crate::params::ModelParams;

/// Mean and standard deviation of one quantity across calibration runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std: f64,
}

impl Spread {
    fn of(values: &[f64]) -> Spread {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Spread {
            mean,
            std: var.sqrt(),
        }
    }

    /// Coefficient of variation (std / mean), 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < 1e-12 {
            0.0
        } else {
            self.std / self.mean.abs()
        }
    }
}

/// Parameter spreads across calibration runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamSpread {
    /// Number of calibrations aggregated.
    pub runs: usize,
    /// Spread of `Tmax_par`.
    pub t_max_par: Spread,
    /// Spread of `Tmax_seq`.
    pub t_max_seq: Spread,
    /// Spread of `Bcomp_seq`.
    pub b_comp_seq: Spread,
    /// Spread of `Bcomm_seq`.
    pub b_comm_seq: Spread,
    /// Spread of `α`.
    pub alpha: Spread,
    /// Spread of `Nmax_seq` (as a real number: argmax jitter).
    pub n_max_seq: Spread,
}

/// Aggregate parameter sets extracted from repeated calibrations.
pub fn param_spread(params: &[ModelParams]) -> ParamSpread {
    assert!(!params.is_empty(), "need at least one calibration");
    let pick = |f: &dyn Fn(&ModelParams) -> f64| -> Spread {
        Spread::of(&params.iter().map(f).collect::<Vec<_>>())
    };
    ParamSpread {
        runs: params.len(),
        t_max_par: pick(&|p| p.t_max_par),
        t_max_seq: pick(&|p| p.t_max_seq),
        b_comp_seq: pick(&|p| p.b_comp_seq),
        b_comm_seq: pick(&|p| p.b_comm_seq),
        alpha: pick(&|p| p.alpha),
        n_max_seq: pick(&|p| p.n_max_seq as f64),
    }
}

/// Calibrate each sweep and aggregate; sweeps that fail to calibrate are
/// reported as errors.
pub fn calibrate_all(sweeps: &[PlacementSweep]) -> Result<Vec<ModelParams>, CalibrationError> {
    sweeps.iter().map(calibrate).collect()
}

/// Average several parameter sets into one (the "average of several runs"
/// mitigation for unstable machines). Peak core counts are rounded to the
/// nearest integer of their mean.
pub fn average_params(params: &[ModelParams]) -> ModelParams {
    assert!(!params.is_empty(), "need at least one calibration");
    let n = params.len() as f64;
    let avg = |f: &dyn Fn(&ModelParams) -> f64| params.iter().map(f).sum::<f64>() / n;
    let mut out = ModelParams {
        n_max_par: avg(&|p| p.n_max_par as f64).round() as usize,
        t_max_par: avg(&|p| p.t_max_par),
        n_max_seq: avg(&|p| p.n_max_seq as f64).round() as usize,
        t_max_seq: avg(&|p| p.t_max_seq),
        t_max2_par: avg(&|p| p.t_max2_par),
        delta_l: avg(&|p| p.delta_l),
        delta_r: avg(&|p| p.delta_r),
        b_comp_seq: avg(&|p| p.b_comp_seq),
        b_comm_seq: avg(&|p| p.b_comm_seq),
        alpha: avg(&|p| p.alpha),
    };
    // Rounding can break the peak ordering in pathological mixes; repair.
    out.n_max_par = out.n_max_par.min(out.n_max_seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{BenchConfig, BenchRunner};
    use mc_topology::{platforms, NumaId};

    /// henri local sweeps under `k` different noise seeds.
    fn noisy_sweeps(k: u64) -> Vec<PlacementSweep> {
        (0..k)
            .map(|seed| {
                let mut p = platforms::henri();
                p.behavior.noise.seed = 1000 + seed;
                BenchRunner::new(&p, BenchConfig::default())
                    .run_placement(NumaId::new(0), NumaId::new(0))
            })
            .collect()
    }

    #[test]
    fn spread_statistics_are_correct() {
        let s = Spread::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.cv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_run_has_zero_std() {
        let s = Spread::of(&[5.0]);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn henri_parameters_are_stable_across_seeds() {
        let params = calibrate_all(&noisy_sweeps(12)).unwrap();
        let spread = param_spread(&params);
        assert_eq!(spread.runs, 12);
        // 1 % measurement noise keeps every bandwidth parameter within a
        // few percent run-to-run ("the run-to-run variability is very
        // low", §IV-B).
        assert!(spread.b_comp_seq.cv() < 0.03, "{:?}", spread.b_comp_seq);
        assert!(spread.b_comm_seq.cv() < 0.03, "{:?}", spread.b_comm_seq);
        assert!(spread.t_max_par.cv() < 0.03, "{:?}", spread.t_max_par);
        assert!(spread.alpha.cv() < 0.10, "{:?}", spread.alpha);
        // The saturation core count jitters by at most about one core.
        assert!(spread.n_max_seq.std < 1.5, "{:?}", spread.n_max_seq);
    }

    #[test]
    fn averaging_reduces_parameter_noise() {
        let params = calibrate_all(&noisy_sweeps(10)).unwrap();
        let averaged = average_params(&params);
        averaged.validate().unwrap();
        let single = params[0];
        let spread = param_spread(&params);
        // The averaged Bcomm_seq sits closer to the run-mean than a
        // typical single run does (by construction, but verify end-to-end).
        assert!(
            (averaged.b_comm_seq - spread.b_comm_seq.mean).abs()
                <= (single.b_comm_seq - spread.b_comm_seq.mean).abs() + 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "need at least one calibration")]
    fn empty_average_panics() {
        average_params(&[]);
    }
}
