//! Calibration robustness: how stable are the extracted parameters under
//! measurement noise — and under injected faults?
//!
//! The paper notes that "higher prediction errors come most often from
//! unstable input data" (§IV-C). This module quantifies that two ways:
//!
//! 1. **Noise spread** — calibrate the same platform across many noise
//!    realisations and report the spread of every parameter
//!    ([`param_spread`]). Users can then decide whether one calibration
//!    run is enough for their machine or whether to average several
//!    ([`average_params`]).
//! 2. **Fault spread** — perturb one sweep with the
//!    [`mc_membench::faults`] injector across many seeds, calibrate each
//!    perturbed copy, and report how many survived, how the surviving
//!    parameters spread, and which typed error rejected each casualty
//!    ([`fault_spread`]). Survivable faults must stay within a bounded
//!    spread; poisoning faults must be *rejected*, never absorbed.

use serde::{Deserialize, Serialize};

use mc_membench::faults::{Fault, FaultInjector};
use mc_membench::record::PlacementSweep;

use crate::calibrate::{calibrate, CalibrationError};
use crate::params::ModelParams;

/// Errors from the robustness aggregations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustnessError {
    /// An aggregation was asked for with zero calibrations.
    NoCalibrations,
}

impl std::fmt::Display for RobustnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustnessError::NoCalibrations => {
                write!(f, "need at least one calibration to aggregate")
            }
        }
    }
}

impl std::error::Error for RobustnessError {}

/// Mean and standard deviation of one quantity across calibration runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std: f64,
}

impl Spread {
    /// Spread of a sample; `None` for an empty one (a mean over zero
    /// values would be a silent NaN).
    pub fn of(values: &[f64]) -> Option<Spread> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Spread {
            mean,
            std: var.sqrt(),
        })
    }

    /// Coefficient of variation (std / mean), 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < 1e-12 {
            0.0
        } else {
            self.std / self.mean.abs()
        }
    }
}

/// Parameter spreads across calibration runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamSpread {
    /// Number of calibrations aggregated.
    pub runs: usize,
    /// Spread of `Tmax_par`.
    pub t_max_par: Spread,
    /// Spread of `Tmax_seq`.
    pub t_max_seq: Spread,
    /// Spread of `Bcomp_seq`.
    pub b_comp_seq: Spread,
    /// Spread of `Bcomm_seq`.
    pub b_comm_seq: Spread,
    /// Spread of `α`.
    pub alpha: Spread,
    /// Spread of `Nmax_seq` (as a real number: argmax jitter).
    pub n_max_seq: Spread,
}

/// Aggregate parameter sets extracted from repeated calibrations.
pub fn param_spread(params: &[ModelParams]) -> Result<ParamSpread, RobustnessError> {
    if params.is_empty() {
        return Err(RobustnessError::NoCalibrations);
    }
    let pick = |f: &dyn Fn(&ModelParams) -> f64| -> Spread {
        // Non-empty by the guard above.
        Spread::of(&params.iter().map(f).collect::<Vec<_>>()).unwrap_or(Spread {
            mean: 0.0,
            std: 0.0,
        })
    };
    Ok(ParamSpread {
        runs: params.len(),
        t_max_par: pick(&|p| p.t_max_par),
        t_max_seq: pick(&|p| p.t_max_seq),
        b_comp_seq: pick(&|p| p.b_comp_seq),
        b_comm_seq: pick(&|p| p.b_comm_seq),
        alpha: pick(&|p| p.alpha),
        n_max_seq: pick(&|p| p.n_max_seq as f64),
    })
}

/// Calibrate each sweep and aggregate; sweeps that fail to calibrate are
/// reported as errors.
pub fn calibrate_all(sweeps: &[PlacementSweep]) -> Result<Vec<ModelParams>, CalibrationError> {
    sweeps.iter().map(calibrate).collect()
}

/// Average several parameter sets into one (the "average of several runs"
/// mitigation for unstable machines). Peak core counts are rounded to the
/// nearest integer of their mean.
pub fn average_params(params: &[ModelParams]) -> Result<ModelParams, RobustnessError> {
    if params.is_empty() {
        return Err(RobustnessError::NoCalibrations);
    }
    let n = params.len() as f64;
    let avg = |f: &dyn Fn(&ModelParams) -> f64| params.iter().map(f).sum::<f64>() / n;
    let mut out = ModelParams {
        n_max_par: avg(&|p| p.n_max_par as f64).round() as usize,
        t_max_par: avg(&|p| p.t_max_par),
        n_max_seq: avg(&|p| p.n_max_seq as f64).round() as usize,
        t_max_seq: avg(&|p| p.t_max_seq),
        t_max2_par: avg(&|p| p.t_max2_par),
        delta_l: avg(&|p| p.delta_l),
        delta_r: avg(&|p| p.delta_r),
        b_comp_seq: avg(&|p| p.b_comp_seq),
        b_comm_seq: avg(&|p| p.b_comm_seq),
        alpha: avg(&|p| p.alpha),
    };
    // Rounding can break the peak ordering in pathological mixes; repair.
    out.n_max_par = out.n_max_par.min(out.n_max_seq);
    Ok(out)
}

/// Outcome of calibrating one sweep under many fault-injection seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpreadReport {
    /// Seeds attempted.
    pub attempted: usize,
    /// Parameters of the runs that calibrated.
    pub params: Vec<ModelParams>,
    /// `(seed, error)` of the runs that were rejected.
    pub failures: Vec<(u64, CalibrationError)>,
    /// Spread of the surviving parameters (`None` if none survived).
    pub spread: Option<ParamSpread>,
}

impl FaultSpreadReport {
    /// Fraction of seeds whose perturbed sweep still calibrated.
    pub fn survival_rate(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        self.params.len() as f64 / self.attempted as f64
    }
}

/// Quantify calibration stability under injected faults: perturb `sweep`
/// with `faults` under seeds `0..runs`, calibrate each perturbed copy, and
/// aggregate. Rejected runs are collected with their typed error — a
/// perturbation must never panic the calibration path.
pub fn fault_spread(sweep: &PlacementSweep, faults: &[Fault], runs: usize) -> FaultSpreadReport {
    let mut params = Vec::new();
    let mut failures = Vec::new();
    for seed in 0..runs as u64 {
        let perturbed = FaultInjector::new(seed).perturbed(sweep, faults);
        match calibrate(&perturbed) {
            Ok(p) => params.push(p),
            Err(e) => failures.push((seed, e)),
        }
    }
    let spread = param_spread(&params).ok();
    FaultSpreadReport {
        attempted: runs,
        params,
        failures,
        spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::record::SweepColumn;
    use mc_membench::{BenchConfig, BenchRunner};
    use mc_topology::{platforms, NumaId};

    /// henri local sweeps under `k` different noise seeds.
    fn noisy_sweeps(k: u64) -> Vec<PlacementSweep> {
        (0..k)
            .map(|seed| {
                let mut p = platforms::henri();
                p.behavior.noise.seed = 1000 + seed;
                BenchRunner::new(&p, BenchConfig::default())
                    .run_placement(NumaId::new(0), NumaId::new(0))
            })
            .collect()
    }

    fn henri_sweep() -> PlacementSweep {
        noisy_sweeps(1).pop().unwrap()
    }

    #[test]
    fn spread_statistics_are_correct() {
        let s = Spread::of(&[1.0, 2.0, 3.0]).unwrap();
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.cv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_run_has_zero_std() {
        let s = Spread::of(&[5.0]).unwrap();
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn empty_spread_is_none_not_nan() {
        assert_eq!(Spread::of(&[]), None);
    }

    #[test]
    fn empty_aggregations_error_instead_of_panicking() {
        assert_eq!(param_spread(&[]), Err(RobustnessError::NoCalibrations));
        assert_eq!(average_params(&[]), Err(RobustnessError::NoCalibrations));
    }

    #[test]
    fn henri_parameters_are_stable_across_seeds() {
        let params = calibrate_all(&noisy_sweeps(12)).unwrap();
        let spread = param_spread(&params).unwrap();
        assert_eq!(spread.runs, 12);
        // 1 % measurement noise keeps every bandwidth parameter within a
        // few percent run-to-run ("the run-to-run variability is very
        // low", §IV-B).
        assert!(spread.b_comp_seq.cv() < 0.03, "{:?}", spread.b_comp_seq);
        assert!(spread.b_comm_seq.cv() < 0.03, "{:?}", spread.b_comm_seq);
        assert!(spread.t_max_par.cv() < 0.03, "{:?}", spread.t_max_par);
        assert!(spread.alpha.cv() < 0.10, "{:?}", spread.alpha);
        // The saturation core count jitters by at most about one core.
        assert!(spread.n_max_seq.std < 1.5, "{:?}", spread.n_max_seq);
    }

    #[test]
    fn averaging_reduces_parameter_noise() {
        let params = calibrate_all(&noisy_sweeps(10)).unwrap();
        let averaged = average_params(&params).unwrap();
        averaged.validate().unwrap();
        let single = params[0];
        let spread = param_spread(&params).unwrap();
        // The averaged Bcomm_seq sits closer to the run-mean than a
        // typical single run does (by construction, but verify end-to-end).
        assert!(
            (averaged.b_comm_seq - spread.b_comm_seq.mean).abs()
                <= (single.b_comm_seq - spread.b_comm_seq.mean).abs() + 1e-9
        );
    }

    #[test]
    fn survivable_faults_keep_calibration_spread_bounded() {
        // Dropped interior points plus a mild spike: every seed must still
        // calibrate, and the surviving parameters must stay within a
        // bounded spread of each other.
        let faults = [
            Fault::DropPoints { fraction: 0.25 },
            Fault::OutlierSpike {
                column: SweepColumn::CompPar,
                factor: 1.10,
            },
        ];
        let report = fault_spread(&henri_sweep(), &faults, 24);
        assert_eq!(report.attempted, 24);
        assert!(
            report.failures.is_empty(),
            "survivable faults must not reject: {:?}",
            report.failures
        );
        assert!((report.survival_rate() - 1.0).abs() < 1e-12);
        let spread = report.spread.unwrap();
        assert!(spread.b_comp_seq.cv() < 0.01, "{:?}", spread.b_comp_seq);
        assert!(spread.b_comm_seq.cv() < 0.02, "{:?}", spread.b_comm_seq);
        assert!(spread.t_max_par.cv() < 0.05, "{:?}", spread.t_max_par);
        assert!(spread.t_max_seq.cv() < 0.05, "{:?}", spread.t_max_seq);
        assert!(spread.n_max_seq.std < 2.0, "{:?}", spread.n_max_seq);
    }

    #[test]
    fn poisoning_faults_are_rejected_with_typed_errors() {
        let report = fault_spread(
            &henri_sweep(),
            &[Fault::NanPoison {
                column: SweepColumn::CommPar,
            }],
            8,
        );
        assert!(report.params.is_empty());
        assert_eq!(report.failures.len(), 8);
        assert!(report
            .failures
            .iter()
            .all(|(_, e)| matches!(e, CalibrationError::NonFinite { .. })));
        assert_eq!(report.spread, None);
        assert_eq!(report.survival_rate(), 0.0);
    }

    #[test]
    fn zeroed_comm_column_is_rejected_across_all_seeds() {
        let report = fault_spread(
            &henri_sweep(),
            &[Fault::ZeroColumn {
                column: SweepColumn::CommAlone,
            }],
            4,
        );
        assert!(report
            .failures
            .iter()
            .all(|(_, e)| matches!(e, CalibrationError::NoCommBandwidth { .. })));
        assert_eq!(report.failures.len(), 4);
    }

    #[test]
    fn shuffled_sweeps_calibrate_identically() {
        // Out-of-order points are a *repaired* degeneracy: the shuffle
        // fault must not change the extracted parameters at all.
        let sweep = henri_sweep();
        let clean = calibrate(&sweep).unwrap();
        let report = fault_spread(&sweep, &[Fault::ShufflePoints], 6);
        assert!(report.failures.is_empty());
        assert!(report.params.iter().all(|p| *p == clean));
    }
}
