//! Collective-operation cost estimation under memory contention.
//!
//! Runtime systems do not only overlap point-to-point halos; they overlap
//! *collectives* (allreduce in particular) with computation. This module
//! combines the classic α–β cost models of collective algorithms with the
//! contended communication bandwidth the paper's model predicts, so a
//! runtime can ask: "how long will my 64 MB ring allreduce take while 17
//! cores are streaming?"
//!
//! Bandwidth terms use the *contended* rate from
//! [`ContentionModel::predict`]; latency terms take a per-message
//! handshake cost.

use serde::{Deserialize, Serialize};

use mc_topology::NumaId;

use crate::placement::ContentionModel;

/// Which collective to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Collective {
    /// Binomial-tree broadcast: ⌈log₂ P⌉ rounds of the full payload.
    Broadcast,
    /// Flat gather/scatter through the root's NIC: `P − 1` payloads
    /// serialised on one wire.
    Gather,
    /// Ring allgather: `P − 1` rounds of the per-rank payload.
    AllgatherRing,
    /// Ring allreduce (reduce-scatter + allgather): `2·(P − 1)` rounds of
    /// `payload / P` chunks.
    AllreduceRing,
}

/// One estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveEstimate {
    /// Number of sequential communication rounds.
    pub rounds: usize,
    /// Bytes moved through a single rank's NIC per round.
    pub bytes_per_round: f64,
    /// Contended communication bandwidth used, GB/s.
    pub bandwidth: f64,
    /// Estimated completion time, seconds.
    pub time: f64,
}

/// Estimate a collective's completion time on `ranks` nodes, each shaped
/// like the modelled machine, while `n_cores` of each node compute against
/// `m_comp` and communication buffers live on `m_comm`.
///
/// `payload` is the collective's logical payload in bytes (per rank for
/// gather/allgather; total for broadcast/allreduce); `handshake` is the
/// per-message latency cost in seconds.
#[allow(clippy::too_many_arguments)]
pub fn estimate_collective(
    model: &ContentionModel,
    op: Collective,
    ranks: usize,
    payload: f64,
    n_cores: usize,
    m_comp: NumaId,
    m_comm: NumaId,
    handshake: f64,
) -> CollectiveEstimate {
    assert!(ranks >= 2, "a collective needs at least two ranks");
    let contended = model.predict(n_cores, m_comp, m_comm).comm * 1e9;
    // Ring algorithms send and receive simultaneously on every rank; the
    // simulated NIC wire is a single shared resource (half-duplex), so a
    // direction can never exceed half the *nominal* wire rate — but when
    // memory contention already throttles each flow below that, the wire
    // is not the binding constraint. Tree/flat algorithms keep each
    // endpoint unidirectional per round.
    let nominal = model.predict_alone(n_cores, m_comp, m_comm).comm * 1e9;
    let ring_bw = contended.min(nominal / 2.0);
    let (rounds, bytes_per_round, bw) = match op {
        Collective::Broadcast => ((ranks as f64).log2().ceil() as usize, payload, contended),
        Collective::Gather => (ranks - 1, payload, contended),
        Collective::AllgatherRing => (ranks - 1, payload, ring_bw),
        Collective::AllreduceRing => (2 * (ranks - 1), payload / ranks as f64, ring_bw),
    };
    let time = rounds as f64 * (handshake + bytes_per_round / bw);
    CollectiveEstimate {
        rounds,
        bytes_per_round,
        bandwidth: bw / 1e9,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::{calibration_sweeps, BenchConfig};
    use mc_mpisim::{allgather_ring, allreduce_ring, broadcast, World};
    use mc_topology::platforms;

    fn model_for(p: &mc_topology::Platform) -> ContentionModel {
        let (local, remote) = calibration_sweeps(p, BenchConfig::exact());
        ContentionModel::calibrate(&p.topology, &local, &remote).unwrap()
    }

    const HANDSHAKE: f64 = 2.1e-6; // EDR rendezvous round trip

    #[test]
    fn allreduce_estimate_matches_simulation_without_compute() {
        let p = platforms::henri();
        let m = model_for(&p);
        for &ranks in &[2usize, 4, 8] {
            let est = estimate_collective(
                &m,
                Collective::AllreduceRing,
                ranks,
                64e6,
                0,
                NumaId::new(0),
                NumaId::new(0),
                HANDSHAKE,
            );
            let mut w = World::homogeneous(&p, ranks);
            let sim = allreduce_ring(&mut w, NumaId::new(0), 64 << 20).unwrap();
            // The estimate uses 64e6 vs the simulation's 64 MiB and ignores
            // ramp effects; agreement within 15 % is the useful bar.
            let rel = (est.time - sim).abs() / sim;
            assert!(
                rel < 0.15,
                "P={ranks}: est {:.4}s vs sim {sim:.4}s",
                est.time
            );
        }
    }

    #[test]
    fn broadcast_estimate_matches_simulation() {
        let p = platforms::henri();
        let m = model_for(&p);
        for &ranks in &[2usize, 4, 8] {
            let est = estimate_collective(
                &m,
                Collective::Broadcast,
                ranks,
                8e6,
                0,
                NumaId::new(0),
                NumaId::new(0),
                HANDSHAKE,
            );
            let mut w = World::homogeneous(&p, ranks);
            let sim = broadcast(&mut w, 0, NumaId::new(0), 8 << 20).unwrap();
            let rel = (est.time - sim).abs() / sim;
            assert!(
                rel < 0.15,
                "P={ranks}: est {:.5}s vs sim {sim:.5}s",
                est.time
            );
        }
    }

    #[test]
    fn allgather_estimate_matches_simulation() {
        let p = platforms::henri();
        let m = model_for(&p);
        let est = estimate_collective(
            &m,
            Collective::AllgatherRing,
            6,
            8e6,
            0,
            NumaId::new(0),
            NumaId::new(0),
            HANDSHAKE,
        );
        let mut w = World::homogeneous(&p, 6);
        let sim = allgather_ring(&mut w, NumaId::new(0), 8 << 20).unwrap();
        let rel = (est.time - sim).abs() / sim;
        assert!(rel < 0.15, "est {:.4}s vs sim {sim:.4}s", est.time);
    }

    #[test]
    fn contention_slows_the_estimated_collective() {
        let p = platforms::henri();
        let m = model_for(&p);
        let quiet = estimate_collective(
            &m,
            Collective::AllreduceRing,
            4,
            64e6,
            0,
            NumaId::new(0),
            NumaId::new(0),
            HANDSHAKE,
        );
        let contended = estimate_collective(
            &m,
            Collective::AllreduceRing,
            4,
            64e6,
            17,
            NumaId::new(0),
            NumaId::new(0),
            HANDSHAKE,
        );
        assert!(
            contended.time > 1.8 * quiet.time,
            "quiet {:.4}s vs contended {:.4}s",
            quiet.time,
            contended.time
        );
        assert!(contended.bandwidth < quiet.bandwidth);
    }

    #[test]
    fn contended_allreduce_estimate_matches_contended_simulation() {
        // The headline use-case: allreduce under full compute load.
        let p = platforms::henri();
        let m = model_for(&p);
        let est = estimate_collective(
            &m,
            Collective::AllreduceRing,
            2,
            64e6,
            17,
            NumaId::new(0),
            NumaId::new(0),
            HANDSHAKE,
        );
        let mut w = World::homogeneous(&p, 2);
        // Saturate both nodes' controllers like the estimate assumes.
        w.start_compute(0, NumaId::new(0), 17, 16 << 30).unwrap();
        w.start_compute(1, NumaId::new(0), 17, 16 << 30).unwrap();
        let sim = allreduce_ring(&mut w, NumaId::new(0), 64 << 20).unwrap();
        let rel = (est.time - sim).abs() / sim;
        assert!(rel < 0.20, "est {:.4}s vs sim {sim:.4}s", est.time);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_panics() {
        let p = platforms::henri();
        let m = model_for(&p);
        estimate_collective(
            &m,
            Collective::Broadcast,
            1,
            1e6,
            0,
            NumaId::new(0),
            NumaId::new(0),
            HANDSHAKE,
        );
    }
}
