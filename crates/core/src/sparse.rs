//! Sparse calibration — the paper's footnote 2 optimisation.
//!
//! "This process can be optimized: once the maxima of bandwidth `Tmax_par`
//! and `Tmax_seq` are found, one can skip executions with number of
//! computing cores greater than `Nmax_seq`, except the execution with all
//! cores of the first socket, required to compute `δr`."
//!
//! This module implements that protocol: an adaptive driver that measures
//! core counts upward only until both peaks are confirmed, then jumps to
//! the last core count — and a validator showing the sparse parameters
//! match the full-sweep ones.

use mc_membench::record::{PlacementSweep, SweepPoint};
use mc_membench::runner::BenchRunner;
use mc_topology::NumaId;

use crate::calibrate::{calibrate, CalibrationError};
use crate::params::ModelParams;

/// How many non-improving core counts confirm that a peak has passed
/// (measurement noise can dent a single point).
const PEAK_CONFIRM: usize = 2;

/// Outcome of a sparse calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCalibration {
    /// The extracted parameters.
    pub params: ModelParams,
    /// The measured points (for inspection); strictly fewer than a full
    /// sweep whenever the peaks occur before the end of the socket.
    pub sweep: PlacementSweep,
    /// Core counts that were measured.
    pub measured_cores: Vec<usize>,
    /// Core counts a full sweep would have measured.
    pub full_cores: usize,
}

impl SparseCalibration {
    /// Fraction of the full sweep that was skipped. A degenerate platform
    /// reporting zero compute cores has nothing to skip: the savings are
    /// 0.0, not `NaN` from the 0/0 division.
    pub fn savings(&self) -> f64 {
        if self.full_cores == 0 {
            return 0.0;
        }
        1.0 - self.measured_cores.len() as f64 / self.full_cores as f64
    }
}

/// Run the adaptive calibration protocol for one placement.
///
/// Measures `n = 1, 2, …` until both the compute-alone and the stacked
/// parallel bandwidth have declined for [`PEAK_CONFIRM`] consecutive
/// points, then measures only the final core count (needed for `δr`).
pub fn calibrate_sparse(
    runner: &BenchRunner,
    m_comp: NumaId,
    m_comm: NumaId,
) -> Result<SparseCalibration, CalibrationError> {
    let full_cores = runner.platform().max_compute_cores();
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut measured: Vec<usize> = Vec::new();

    let mut best_seq = f64::MIN;
    let mut best_par = f64::MIN;
    let mut seq_decline = 0usize;
    let mut par_decline = 0usize;

    let mut n = 1;
    while n <= full_cores {
        let point = runner.measure_point(n, m_comp, m_comm);
        measured.push(n);
        if point.comp_alone > best_seq {
            best_seq = point.comp_alone;
            seq_decline = 0;
        } else {
            seq_decline += 1;
        }
        let total = point.total_par();
        if total > best_par {
            best_par = total;
            par_decline = 0;
        } else {
            par_decline += 1;
        }
        points.push(point);
        if seq_decline >= PEAK_CONFIRM && par_decline >= PEAK_CONFIRM && n < full_cores {
            // Both peaks passed: jump to the last core count for δr.
            let last = runner.measure_point(full_cores, m_comp, m_comm);
            measured.push(full_cores);
            points.push(last);
            break;
        }
        n += 1;
    }

    let sweep = PlacementSweep {
        m_comp,
        m_comm,
        points,
    };
    let params = calibrate(&sweep)?;
    Ok(SparseCalibration {
        params,
        sweep,
        measured_cores: measured,
        full_cores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_membench::BenchConfig;
    use mc_topology::platforms;

    fn n0() -> NumaId {
        NumaId::new(0)
    }

    #[test]
    fn sparse_skips_a_chunk_of_the_sweep_on_henri_subnuma() {
        // henri-subnuma saturates one sub-NUMA controller with ~8 of its
        // 17 cores: the adaptive driver must stop early and skip a large
        // part of the sweep.
        let p = platforms::henri_subnuma();
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let sparse = calibrate_sparse(&runner, n0(), n0()).unwrap();
        assert!(
            sparse.measured_cores.len() < sparse.full_cores,
            "measured {:?}",
            sparse.measured_cores
        );
        assert!(sparse.savings() > 0.25, "savings {}", sparse.savings());
        // The final core count is always present (needed for δr).
        assert_eq!(*sparse.measured_cores.last().unwrap(), 17);
    }

    #[test]
    fn sparse_parameters_match_full_sweep_parameters() {
        let p = platforms::henri_subnuma();
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let sparse = calibrate_sparse(&runner, n0(), n0()).unwrap();
        let full = calibrate(&runner.run_placement(n0(), n0())).unwrap();
        // Deterministic noise means identical points at identical n, so
        // every parameter derived from the measured region matches within
        // the resolution the missing points could shift an argmax by.
        assert!((sparse.params.b_comp_seq - full.b_comp_seq).abs() < 1e-9);
        assert!((sparse.params.t_max_seq - full.t_max_seq).abs() / full.t_max_seq < 0.02);
        assert!((sparse.params.t_max_par - full.t_max_par).abs() / full.t_max_par < 0.02);
        assert!((sparse.params.alpha - full.alpha).abs() < 0.05);
        assert!((sparse.params.delta_r - full.delta_r).abs() < 0.3);
        assert!(sparse.params.n_max_seq.abs_diff(full.n_max_seq) <= 1);
    }

    #[test]
    fn sparse_runs_to_the_end_when_there_is_no_early_peak() {
        // diablo's compute-alone curve rises essentially to the last core:
        // nothing can be skipped and the driver must degrade gracefully to
        // a full sweep.
        let p = platforms::diablo();
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let sparse = calibrate_sparse(&runner, n0(), n0()).unwrap();
        assert!(
            sparse.measured_cores.len() as f64 >= 0.8 * sparse.full_cores as f64,
            "measured {:?}",
            sparse.measured_cores
        );
    }

    #[test]
    fn savings_is_zero_not_nan_for_zero_core_platforms() {
        // Regression: a SparseCalibration carrying full_cores == 0 (a
        // platform reporting no compute cores) used to yield NaN from the
        // 0/0 division; it must report zero savings instead.
        let p = platforms::henri();
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let mut sparse = calibrate_sparse(&runner, n0(), n0()).unwrap();
        sparse.full_cores = 0;
        sparse.measured_cores.clear();
        assert!(!sparse.savings().is_nan());
        assert_eq!(sparse.savings(), 0.0);
    }

    #[test]
    fn savings_formula() {
        let p = platforms::henri_subnuma();
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let sparse = calibrate_sparse(&runner, n0(), n0()).unwrap();
        let expected = 1.0 - sparse.measured_cores.len() as f64 / 17.0;
        assert!((sparse.savings() - expected).abs() < 1e-12);
    }
}
