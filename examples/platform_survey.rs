//! Platform survey: the paper's full evaluation loop — measure every
//! placement on every testbed machine, calibrate the model from the two
//! samples, report the prediction error, and sketch the worst-contended
//! placement as an ASCII chart.
//!
//! ```text
//! cargo run --release --example platform_survey
//! ```

use memory_contention::prelude::*;
use memory_contention::viz;

fn main() {
    println!(
        "{:<15} {:>10} {:>10} {:>9}  worst-contended placement",
        "platform", "comm err", "comp err", "average"
    );

    for platform in platforms::all() {
        let sweep = sweep_platform_parallel(&platform, BenchConfig::default());
        let ((lc, lm), (rc, rm)) = calibration_placements(&platform);
        let local = sweep.placement(lc, lm).expect("local sample");
        let remote = sweep.placement(rc, rm).expect("remote sample");
        let model = ContentionModel::calibrate(&platform.topology, local, remote)
            .expect("calibration succeeds");
        let errors = evaluate(&model, &sweep, &[(lc, lm), (rc, rm)]);

        // Find the placement with the deepest communication squeeze.
        let worst = sweep
            .sweeps
            .iter()
            .min_by(|a, b| {
                let ratio = |s: &PlacementSweep| {
                    let last = s.points.last().expect("non-empty sweep");
                    last.comm_par / s.comm_alone_mean()
                };
                ratio(a).total_cmp(&ratio(b))
            })
            .expect("platform has placements");

        println!(
            "{:<15} {:>9.2}% {:>9.2}% {:>8.2}%  comp@{} comm@{}",
            platform.name(),
            errors.comm_all,
            errors.comp_all,
            errors.average,
            worst.m_comp,
            worst.m_comm
        );
    }

    // Detail view for one machine: measured vs predicted on the local
    // sample of henri.
    let platform = platforms::henri();
    let sweep = sweep_platform_parallel(&platform, BenchConfig::default());
    let ((lc, lm), (rc, rm)) = calibration_placements(&platform);
    let model = ContentionModel::calibrate(
        &platform.topology,
        sweep.placement(lc, lm).expect("local sample"),
        sweep.placement(rc, rm).expect("remote sample"),
    )
    .expect("calibration succeeds");

    let measured: Vec<(f64, f64)> = sweep
        .placement(lc, lm)
        .expect("local sample")
        .points
        .iter()
        .map(|p| (p.n_cores as f64, p.comm_par))
        .collect();
    let predicted: Vec<(f64, f64)> = (1..=platform.max_compute_cores())
        .map(|n| (n as f64, model.predict(n, lc, lm).comm))
        .collect();

    println!("\nhenri, both buffers on numa0 — network bandwidth (GB/s) vs computing cores:");
    print!(
        "{}",
        viz::line_plot(
            &[
                ("measured comm (parallel)", &measured),
                ("model prediction", &predicted),
            ],
            60,
            14,
        )
    );
}
