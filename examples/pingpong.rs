//! Ping-pong curves: characterise each platform's network with the classic
//! message-size ladder, and show the NIC-locality effect on diablo
//! (≈ 22 GB/s into the NIC-local NUMA node, ≈ 12 GB/s across Infinity
//! Fabric) — §IV-B c.
//!
//! ```text
//! cargo run --release --example pingpong
//! ```

use memory_contention::netsim::{pingpong_curve, size_ladder, ProtocolConfig};
use memory_contention::prelude::*;
use memory_contention::viz;

fn main() {
    println!(
        "{:<15} {:<16} {:>14} {:>16}",
        "platform", "network", "latency (us)", "peak bw (GB/s)"
    );
    for platform in platforms::all() {
        let fabric = Fabric::new(&platform);
        let proto = ProtocolConfig::for_tech(platform.topology.nic.tech);
        let curve = pingpong_curve(
            &fabric,
            &proto,
            platform.topology.nic.closest_numa,
            &size_ladder(64 << 20),
        );
        let first = curve.first().expect("non-empty curve");
        let last = curve.last().expect("non-empty curve");
        println!(
            "{:<15} {:<16} {:>14.2} {:>16.2}",
            platform.name(),
            platform.topology.nic.tech.to_string(),
            first.half_rtt * 1e6,
            last.bandwidth
        );
    }

    // The diablo locality effect.
    let diablo = platforms::by_name("diablo").expect("diablo exists");
    let fabric = Fabric::new(&diablo);
    let proto = ProtocolConfig::for_tech(diablo.topology.nic.tech);
    let sizes = size_ladder(64 << 20);
    let near = pingpong_curve(&fabric, &proto, NumaId::new(1), &sizes);
    let far = pingpong_curve(&fabric, &proto, NumaId::new(0), &sizes);

    let to_pts = |curve: &[memory_contention::netsim::PingPongPoint]| -> Vec<(f64, f64)> {
        curve
            .iter()
            .map(|p| ((p.bytes as f64).log2(), p.bandwidth))
            .collect()
    };
    let near_pts = to_pts(&near);
    let far_pts = to_pts(&far);

    println!("\ndiablo receive bandwidth (GB/s) vs log2(message size):");
    print!(
        "{}",
        viz::line_plot(
            &[
                ("into NUMA node 1 (NIC-local)", &near_pts),
                ("into NUMA node 0 (across Infinity Fabric)", &far_pts),
            ],
            64,
            14,
        )
    );
    println!(
        "\n64 MiB messages: {:.1} GB/s NIC-local vs {:.1} GB/s remote ({:.1}x)",
        near.last().expect("curve").bandwidth,
        far.last().expect("curve").bandwidth,
        near.last().expect("curve").bandwidth / far.last().expect("curve").bandwidth
    );
}
