//! Placement advisor: the model application the paper's conclusion sketches
//! — "runtime systems could better know on which NUMA node store data and
//! how many computing cores should be used to avoid memory contention."
//!
//! A task-based runtime (StarPU/PaRSEC-style) must place the buffers of an
//! iterative solver phase: ~48 GB of memory-bound kernel traffic overlapped
//! with an 8 GB halo exchange. The advisor scores every
//! `(cores, comp placement, comm placement)` choice with the calibrated
//! model and prints the podium.
//!
//! ```text
//! cargo run --release --example placement_advisor
//! ```

use memory_contention::prelude::*;

fn main() {
    // The 4-NUMA machine gives the advisor real placement freedom.
    let platform = platforms::henri_subnuma();
    println!("{}\n", platform.topology.summary());

    let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());
    let model = ContentionModel::calibrate(&platform.topology, &local, &remote)
        .expect("calibration succeeds");

    let phase = PhaseProfile {
        compute_bytes: 48e9,
        comm_bytes: 8e9,
        max_cores: platform.max_compute_cores(),
    };
    println!(
        "phase: {:.0} GB of kernel traffic overlapped with {:.0} GB received\n",
        phase.compute_bytes / 1e9,
        phase.comm_bytes / 1e9
    );

    let ranked = rank(&model, &phase);
    println!("top configurations:");
    println!(
        "{:<6} {:<10} {:<10} {:>14} {:>14} {:>12}",
        "cores", "comp on", "comm on", "comp GB/s", "comm GB/s", "makespan"
    );
    for r in ranked.iter().take(8) {
        println!(
            "{:<6} {:<10} {:<10} {:>14.1} {:>14.1} {:>10.3} s",
            r.n_cores,
            r.m_comp.to_string(),
            r.m_comm.to_string(),
            r.comp_bw,
            r.comm_bw,
            r.makespan
        );
    }

    let best = &ranked[0];
    let worst = ranked.last().expect("non-empty ranking");
    println!(
        "\nbest choice is {:.1}x faster than the worst ({:.3} s vs {:.3} s)",
        worst.makespan / best.makespan,
        best.makespan,
        worst.makespan
    );

    // Contrast with the naive choice: everything on NUMA node 0, all cores.
    let naive = model.predict(phase.max_cores, NumaId::new(0), NumaId::new(0));
    let naive_alone = model.predict_alone(phase.max_cores, NumaId::new(0), NumaId::new(0));
    let naive_makespan = memory_contention::model::two_phase_makespan(
        naive,
        naive_alone,
        phase.compute_bytes,
        phase.comm_bytes,
    );
    println!(
        "naive (all data on numa0, all cores): {naive_makespan:.3} s -> the advisor saves \
         {:.0} % of the phase time",
        100.0 * (1.0 - best.makespan / naive_makespan)
    );
}
