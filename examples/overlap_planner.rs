//! Overlap planner: drive the MPI-like simulator with an iterative
//! stencil-style application — compute a domain, exchange halos — and
//! compare three execution strategies on the simulated machine:
//!
//! 1. **sequential**: compute, then communicate (no overlap);
//! 2. **overlap, shared NUMA node**: communications run during the compute
//!    phase but both use NUMA node 0 (contention!);
//! 3. **overlap, split placement**: receive buffers on the other NUMA
//!    node, away from the compute stream.
//!
//! This is the scenario that motivates the paper: overlap is only "free"
//! if memory contention does not eat the gain.
//!
//! ```text
//! cargo run --release --example overlap_planner
//! ```

use memory_contention::prelude::*;

const ITERATIONS: usize = 8;
const COMPUTE_BYTES_PER_CORE: u64 = 512 << 20; // 512 MiB per core per iter
const HALO_BYTES: u64 = 512 << 20; // halo exchanged per iteration
const CORES: usize = 17;

/// One application run; returns the simulated wall-clock seconds.
fn run(platform: &Platform, overlap: bool, comm_numa: NumaId) -> f64 {
    let comp_numa = NumaId::new(0);
    let mut world = World::pair(platform);
    for iter in 0..ITERATIONS {
        let tag = Tag(iter as u32);
        if overlap {
            // Post the halo receive first, then compute while it lands.
            let recv = world
                .irecv(0, 1, comm_numa, HALO_BYTES, tag)
                .expect("post receive");
            world
                .isend(1, 0, comm_numa, HALO_BYTES, tag)
                .expect("post send");
            let job = world
                .start_compute(0, comp_numa, CORES, COMPUTE_BYTES_PER_CORE)
                .expect("start compute");
            world.wait_job(job).expect("compute completes");
            world.wait(recv).expect("halo arrives");
        } else {
            let job = world
                .start_compute(0, comp_numa, CORES, COMPUTE_BYTES_PER_CORE)
                .expect("start compute");
            world.wait_job(job).expect("compute completes");
            let recv = world
                .irecv(0, 1, comm_numa, HALO_BYTES, tag)
                .expect("post receive");
            world
                .isend(1, 0, comm_numa, HALO_BYTES, tag)
                .expect("post send");
            world.wait(recv).expect("halo arrives");
        }
    }
    world.now()
}

fn main() {
    // The sub-NUMA platform exposes distinct nodes on the compute socket,
    // so the "split placement" strategy has somewhere to go.
    let platform = platforms::henri_subnuma();
    println!("{}", platform.topology.summary());
    println!(
        "{ITERATIONS} iterations x ({CORES} cores x {} MiB compute + {} MiB halo)\n",
        COMPUTE_BYTES_PER_CORE >> 20,
        HALO_BYTES >> 20
    );

    let sequential = run(&platform, false, NumaId::new(0));
    let overlap_shared = run(&platform, true, NumaId::new(0));
    let overlap_split = run(&platform, true, NumaId::new(1));

    let report = |name: &str, t: f64| {
        println!(
            "{name:<28} {t:>8.3} s   speedup vs sequential: {:>5.2}x",
            sequential / t
        );
    };
    report("sequential (no overlap)", sequential);
    report("overlap, shared NUMA node", overlap_shared);
    report("overlap, split placement", overlap_split);

    println!(
        "\noverlap pays ({:.0} % saved), and placing the receive buffers on \
         their own NUMA node saves another {:.1} %",
        100.0 * (1.0 - overlap_shared / sequential),
        100.0 * (1.0 - overlap_split / overlap_shared)
    );
}
