//! Calibration lab: everything around *getting* the model parameters —
//! the sparse sweep protocol of the paper's footnote 2, parameter
//! stability across repeated runs (§IV-C: "higher prediction errors come
//! most often from unstable input data"), and the averaging mitigation.
//!
//! ```text
//! cargo run --release --example calibration_lab
//! ```

use memory_contention::model::{
    average_params, calibrate, calibrate_all, calibrate_sparse, param_spread,
};
use memory_contention::prelude::*;

fn main() {
    let platform = platforms::henri_subnuma();
    println!("{}\n", platform.topology.summary());
    let numa = NumaId::new(0);

    // --- Footnote 2: the sparse sweep -------------------------------
    let runner = BenchRunner::new(&platform, BenchConfig::default());
    let sparse = calibrate_sparse(&runner, numa, numa).expect("sparse calibration succeeds");
    let full = calibrate(&runner.run_placement(numa, numa)).expect("full calibration succeeds");
    println!(
        "sparse sweep measured {} of {} core counts ({:.0} % of runs saved)",
        sparse.measured_cores.len(),
        sparse.full_cores,
        100.0 * sparse.savings()
    );
    println!("  sparse: {}", sparse.params);
    println!("  full  : {full}\n");

    // --- Stability across noise realisations ------------------------
    let sweeps: Vec<_> = (0..10)
        .map(|i| {
            let mut p = platform.clone();
            p.behavior.noise.seed = 0xE2 + i; // ten different "days"
            BenchRunner::new(&p, BenchConfig::default()).run_placement(numa, numa)
        })
        .collect();
    let params = calibrate_all(&sweeps).expect("all runs calibrate");
    let spread = param_spread(&params).expect("ten calibrations to aggregate");
    println!(
        "parameter stability over {} runs (mean ± std):",
        spread.runs
    );
    let show = |name: &str, s: memory_contention::model::Spread| {
        println!(
            "  {name:<12} {:>8.2} ± {:>5.3}  (cv {:.2} %)",
            s.mean,
            s.std,
            100.0 * s.cv()
        );
    };
    show("Bcomp_seq", spread.b_comp_seq);
    show("Bcomm_seq", spread.b_comm_seq);
    show("Tmax_par", spread.t_max_par);
    show("alpha", spread.alpha);
    show("Nmax_seq", spread.n_max_seq);

    // --- The averaging mitigation ------------------------------------
    let averaged = average_params(&params).expect("ten calibrations to average");
    println!("\naveraged parameters: {averaged}");
    println!(
        "(a single run's Bcomm_seq can be {:.2}..{:.2}; the average pins it to {:.2})",
        params
            .iter()
            .map(|p| p.b_comm_seq)
            .fold(f64::INFINITY, f64::min),
        params
            .iter()
            .map(|p| p.b_comm_seq)
            .fold(f64::NEG_INFINITY, f64::max),
        averaged.b_comm_seq
    );
}
