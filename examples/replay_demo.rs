//! Trace replay demo: generate a synthetic 2D halo-exchange trace,
//! replay it on henri with memory contention simulated, and compare the
//! whole-program slowdown under two NUMA placements. Finishes with the
//! placement search and the model advisor's cross-check.
//!
//! ```text
//! cargo run --release --example replay_demo
//! ```

use memory_contention::membench::{calibration_sweeps, BenchConfig};
use memory_contention::model::ContentionModel;
use memory_contention::replay::generate::{self, GenParams};
use memory_contention::replay::{advisor_crosscheck, replay, report, search, ReplayConfig};
use memory_contention::topology::{platforms, NumaId};

fn main() {
    let platform = platforms::henri();
    let params = GenParams {
        ranks: 4,
        iters: 2,
        cores: 17,
        compute_bytes: 512 << 20,
        comm_bytes: 8 << 20,
        ..GenParams::default()
    };
    let trace = generate::halo2d(&params);

    // Placement A: everything on NUMA node 0 — computation and the NIC
    // fight for the same memory controllers.
    let colocated = replay(&platform, &trace, &ReplayConfig::default()).expect("replay");
    // Placement B: communication buffers moved to NUMA node 1.
    let split = replay(
        &platform,
        &trace,
        &ReplayConfig {
            comm_numa: Some(NumaId::new(1)),
            ..ReplayConfig::default()
        },
    )
    .expect("replay");

    println!("== everything on numa0 ==");
    print!("{}", report::render(&colocated, platform.name()));
    println!("\n== communication buffers moved to numa1 ==");
    print!("{}", report::render(&split, platform.name()));
    println!(
        "\nmoving the buffers changes the makespan {:.6} s -> {:.6} s ({:+.1} %)",
        colocated.contended.makespan,
        split.contended.makespan,
        100.0 * (split.contended.makespan / colocated.contended.makespan - 1.0)
    );

    // Exhaustive placement search, cross-checked against the calibrated
    // model's advisor on the same workload.
    let found = search(&platform, &trace, &[]).expect("search");
    println!("\n{}", report::render_search(&found));
    let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());
    let model = ContentionModel::calibrate(&platform.topology, &local, &remote).expect("calibrate");
    let check = advisor_crosscheck(&model, &trace, found.winner(), platform.max_compute_cores());
    match &check.advisor {
        Some(r) => println!(
            "advisor recommends comp on {}, comm on {} — {}",
            r.m_comp,
            r.m_comm,
            if check.agree_placement {
                "agrees with the replay search winner"
            } else {
                "differs from the replay search winner"
            }
        ),
        None => println!("advisor produced no recommendation"),
    }
}
