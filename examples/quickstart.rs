//! Quickstart: calibrate the contention model on one platform from the two
//! sample sweeps and predict every placement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use memory_contention::prelude::*;

fn main() {
    // Pick a machine from the paper's testbed (Table I).
    let platform = platforms::henri();
    println!("{}\n", platform.topology.summary());

    // 1. Run the two calibration benchmarks (§IV-A2): both buffers on the
    //    first NUMA node of the first socket, then both on the first NUMA
    //    node of the second socket.
    let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());

    // 2. Calibrate the model. These ten numbers per locality class are all
    //    the model needs (§III-A).
    let model = ContentionModel::calibrate(&platform.topology, &local, &remote)
        .expect("calibration succeeds");
    println!("M_local : {}", model.local().params());
    println!("M_remote: {}\n", model.remote().params());

    // 3. Predict all placements — including the ones never measured.
    let n = platform.max_compute_cores();
    println!("predictions with {n} computing cores:");
    println!(
        "{:<12} {:<12} {:>18} {:>18}",
        "comp data", "comm data", "comp bw (GB/s)", "comm bw (GB/s)"
    );
    for (m_comp, m_comm) in model.placements() {
        let pred = model.predict(n, m_comp, m_comm);
        let tag = if model.is_sample_placement(m_comp, m_comm) {
            " (calibration sample)"
        } else {
            ""
        };
        println!(
            "{:<12} {:<12} {:>18.2} {:>18.2}{tag}",
            m_comp.to_string(),
            m_comm.to_string(),
            pred.comp,
            pred.comm
        );
    }

    // 4. The headline effect: communications are squeezed to their
    //    guaranteed floor when every stream hammers the same NUMA node.
    let nominal = model.local().comm_alone();
    let contended = model.predict(n, NumaId::new(0), NumaId::new(0)).comm;
    println!(
        "\ncommunications: {nominal:.2} GB/s alone -> {contended:.2} GB/s under full contention \
         ({:.0} % kept)",
        100.0 * contended / nominal
    );
}
