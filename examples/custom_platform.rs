//! Model *your* machine: describe a custom cluster node with
//! `PlatformBuilder`, run the two-sweep calibration against it, verify the
//! model's accuracy on every placement, and ask the advisor where to put
//! the data — the full workflow a downstream user follows for hardware
//! that is not in the paper's testbed.
//!
//! ```text
//! cargo run --release --example custom_platform
//! ```

use memory_contention::prelude::*;
use memory_contention::topology::builder::{InterconnectKind, PlatformBuilder};
use memory_contention::topology::NetworkTech;

fn main() {
    // A hypothetical dual-socket Sapphire-Rapids-like node with HDR200.
    let platform = PlatformBuilder::new("sapphire")
        .processor("Hypothetical CPU 8460", 48)
        .sockets(2)
        .numa_per_socket(2)
        .memory_gb(512)
        .memory_controller(62.0, 11, 0.5)
        // Sub-NUMA mesh slices: keep the socket-level path close to one
        // controller's worth so off-diagonal placements behave like the
        // calibrated diagonal ones (see henri-subnuma).
        .mesh_capacity(66.0)
        .core_stream(6.0, 4.8)
        .interconnect(InterconnectKind::Upi, 48.0, 34.0)
        .nic(NetworkTech::InfinibandHdr, 0)
        .arbitration(0.35, 2.3)
        .noise(0.008, 0.01, 0xCAFE)
        .build()
        .expect("platform description is consistent");
    println!("{}\n", platform.topology.summary());

    // Calibrate from the two sample placements…
    let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());
    let model = ContentionModel::calibrate(&platform.topology, &local, &remote)
        .expect("calibration succeeds");
    println!("M_local : {}", model.local().params());
    println!("M_remote: {}\n", model.remote().params());

    // …and check the predictions against a full measurement of all 16
    // placements (which a real user could skip — that is the point).
    let sweep = sweep_platform_parallel(&platform, BenchConfig::default());
    let samples = [(local.m_comp, local.m_comm), (remote.m_comp, remote.m_comm)];
    let errors = evaluate(&model, &sweep, &samples);
    println!(
        "prediction error over all {} placements: comm {:.2} %, comp {:.2} %, avg {:.2} %\n",
        sweep.sweeps.len(),
        errors.comm_all,
        errors.comp_all,
        errors.average
    );

    // Where should a 100 GB-compute / 20 GB-receive phase run?
    let phase = PhaseProfile {
        compute_bytes: 100e9,
        comm_bytes: 20e9,
        max_cores: platform.max_compute_cores(),
    };
    let best = recommend(&model, &phase).expect("a configuration exists");
    println!(
        "advisor: use {} cores, computation data on {}, receive buffers on {} \
         -> estimated {:.3} s",
        best.n_cores, best.m_comp, best.m_comm, best.makespan
    );
}
