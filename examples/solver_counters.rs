//! Prints the solver-invocation and cache-hit counters of a steady-state
//! engine run and of a full event-driven placement sweep — the numbers
//! recorded in `BENCH_1.json`. Run with `--release` for realistic timing.
use memory_contention::membench::{BenchConfig, BenchRunner};
use memory_contention::memsim::{Activity, ActivityKind, Engine, Fabric};
use memory_contention::topology::{platforms, NumaId};

fn main() {
    let p = platforms::henri();
    let f = Fabric::new(&p);
    let mut acts: Vec<Activity> = (0..17)
        .map(|i| Activity {
            kind: ActivityKind::Compute {
                numa: NumaId::new(0),
                bytes_per_pass: 64e6,
                pass_overhead: 2e-6,
            },
            start: i as f64 * 1.3e-5,
        })
        .collect();
    acts.push(Activity {
        kind: ActivityKind::CommRecv {
            numa: NumaId::new(0),
            msg_bytes: 64e6 * 1.048_576,
            handshake: 4e-6,
            gap: 1e-6,
        },
        start: 0.0,
    });
    let uncached = Engine::new(&f).uncached().run(&acts, 0.05, 0.3);
    let engine = Engine::new(&f);
    let cold = engine.run(&acts, 0.05, 0.3);
    let warm = engine.run(&acts, 0.05, 0.3);
    println!("steady-state parallel run (henri, 17 cores + 1 msg stream):");
    println!("  events            {}", uncached.events);
    println!("  uncached solves   {}", uncached.stats.invocations);
    println!(
        "  cold-cache solves {} (hits {})",
        cold.stats.invocations, cold.stats.cache_hits
    );
    println!(
        "  warm-cache solves {} (hits {})",
        warm.stats.invocations, warm.stats.cache_hits
    );

    let mut cfg = BenchConfig::event_driven();
    cfg.window = 0.05;
    cfg.warmup = 0.02;
    let runner = BenchRunner::new(&p, cfg);
    runner.run_placement(NumaId::new(0), NumaId::new(0));
    let s = runner.solver_stats();
    println!("event-driven placement sweep (henri, 17 core counts x 3 phases):");
    println!(
        "  solver invocations {}  cache hits {}",
        s.invocations, s.cache_hits
    );
}
