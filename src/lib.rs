//! # memory-contention
//!
//! A Rust reproduction of *Modeling Memory Contention between
//! Communications and Computations in Distributed HPC Systems* (Denis,
//! Jeannot, Swartvagher — IPDPS Workshops 2022, hal-03682199).
//!
//! When MPI communications are overlapped with memory-bound computations,
//! both streams share the machine's memory system and contend for
//! bandwidth. The paper proposes a threshold model that, calibrated from
//! only two benchmark sweeps, predicts the bandwidth each stream obtains
//! for *every* NUMA placement of the data — with an average error under
//! 4 %.
//!
//! This crate is a facade over the workspace:
//!
//! * [`topology`] — machine model and the six testbed platforms (Table I);
//! * [`memsim`] — flow-level simulator of the NUMA memory system (the
//!   substitute for the paper's physical machines);
//! * [`netsim`] — NIC/DMA/protocol models;
//! * [`mpisim`] — an MPI-like two-node message layer with tag matching;
//! * [`membench`] — the paper's benchmarking suite (§IV-A);
//! * [`model`] — **the paper's contribution**: calibration, equations
//!   (1)–(8), placement combination, error metrics, baselines, and the
//!   placement advisor;
//! * [`replay`] — trace-driven application replay: whole-program
//!   makespan and contention-slowdown prediction from per-rank event
//!   traces, with synthetic generators and placement search;
//! * [`viz`] — SVG/ASCII rendering of the paper's figures;
//! * [`obs`] — observability: spans, counters and histograms recorded
//!   across the pipeline, with JSON-lines exporters.
//!
//! ## Quickstart
//!
//! ```
//! use memory_contention::prelude::*;
//!
//! let platform = platforms::henri();
//! let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());
//! let model = ContentionModel::calibrate(&platform.topology, &local, &remote).unwrap();
//!
//! // How much bandwidth do 17 cores and the NIC get when they share NUMA
//! // node 0?
//! let pred = model.predict(17, NumaId::new(0), NumaId::new(0));
//! assert!(pred.comm < model.local().comm_alone()); // contention!
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mc_membench as membench;
pub use mc_memsim as memsim;
pub use mc_model as model;
pub use mc_mpisim as mpisim;
pub use mc_netsim as netsim;
pub use mc_obs as obs;
pub use mc_replay as replay;
pub use mc_topology as topology;
pub use mc_viz as viz;

/// The most common imports in one place.
pub mod prelude {
    pub use mc_membench::{
        calibration_placements, calibration_sweeps, sweep_platform, sweep_platform_parallel,
        Backend, BenchConfig, BenchRunner, PlacementSweep, PlatformSweep, SweepPoint,
    };
    pub use mc_memsim::{Engine, Fabric, StreamSpec};
    pub use mc_model::{
        evaluate, rank, recommend, BandwidthPredictor, ContentionModel, ErrorBreakdown,
        InstantiatedModel, ModelParams, PhaseProfile, Prediction,
    };
    pub use mc_mpisim::{Tag, World};
    pub use mc_netsim::NicModel;
    pub use mc_topology::{platforms, MachineTopology, NumaId, Platform, SocketId};
}
