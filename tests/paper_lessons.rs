//! The qualitative findings of the paper's §IV-C2 ("Lessons learned") and
//! §VI, checked against the simulated platforms:
//!
//! 1. contention is most severe when computations and communications use
//!    data on the *same* NUMA node;
//! 2. the bottleneck is mainly the NUMA node's memory controller, not the
//!    inter-socket link (henri-subnuma: same remote node hurts much more
//!    than two different remote nodes);
//! 3. under contention the system degrades communication bandwidth first,
//!    but guarantees it a minimum; only then do computations degrade.

use memory_contention::prelude::*;

fn sweep(platform: &Platform) -> PlatformSweep {
    sweep_platform_parallel(platform, BenchConfig::default())
}

/// Relative communication bandwidth kept under full compute load.
fn comm_kept(sweep: &PlatformSweep, m_comp: NumaId, m_comm: NumaId) -> f64 {
    let s = sweep.placement(m_comp, m_comm).expect("placement measured");
    let last = s.points.last().expect("non-empty");
    last.comm_par / s.comm_alone_mean()
}

/// Mean relative communication bandwidth over the whole core sweep —
/// captures *when* the squeeze starts, not just how deep it ends.
fn comm_kept_mean(sweep: &PlatformSweep, m_comp: NumaId, m_comm: NumaId) -> f64 {
    let s = sweep.placement(m_comp, m_comm).expect("placement measured");
    let nominal = s.comm_alone_mean();
    s.points.iter().map(|p| p.comm_par / nominal).sum::<f64>() / s.points.len() as f64
}

#[test]
fn same_numa_placements_suffer_most() {
    let p = platforms::by_name("henri-subnuma").unwrap();
    let data = sweep(&p);
    // Average squeeze on the diagonal (same node) vs off-diagonal.
    let mut diag = Vec::new();
    let mut off = Vec::new();
    for (m_comp, m_comm) in p.topology.placement_combinations() {
        let kept = comm_kept(&data, m_comp, m_comm);
        if m_comp == m_comm {
            diag.push(kept);
        } else {
            off.push(kept);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&diag) < mean(&off),
        "diagonal {diag:?} should be squeezed harder than off-diagonal {off:?}"
    );
}

#[test]
fn compute_only_impacted_when_comm_shares_its_node() {
    let p = platforms::by_name("henri-subnuma").unwrap();
    let data = sweep(&p);
    let at = |m_comp: u16, m_comm: u16| {
        let s = data
            .placement(NumaId::new(m_comp), NumaId::new(m_comm))
            .expect("measured");
        let last = s.points.last().expect("non-empty");
        last.comp_par / last.comp_alone
    };
    // Same node: computations lose bandwidth to the guaranteed DMA floor.
    let shared = at(0, 0);
    // Different nodes: computations keep (almost) everything.
    let apart = at(0, 2);
    assert!(apart > 0.97, "apart {apart}");
    assert!(shared < apart, "shared {shared} vs apart {apart}");
}

#[test]
fn bottleneck_is_the_memory_controller_not_the_socket_link() {
    // henri-subnuma, both streams remote: same remote node vs two distinct
    // remote nodes. Both cross the inter-socket link; only the first
    // shares a memory controller. The paper: "the place where the most
    // contention occurs is memory controller, and not the inter-socket
    // link".
    let p = platforms::by_name("henri-subnuma").unwrap();
    let data = sweep(&p);
    // At full load both placements converge to the guaranteed floor; the
    // controller's signature is the *earlier onset* of the squeeze, so
    // compare the mean kept bandwidth over the sweep.
    let same_remote = comm_kept_mean(&data, NumaId::new(2), NumaId::new(2));
    let split_remote = comm_kept_mean(&data, NumaId::new(2), NumaId::new(3));
    assert!(
        same_remote < split_remote,
        "same remote node ({same_remote:.3}) must hurt more than split remote nodes \
         ({split_remote:.3})"
    );
}

#[test]
fn communications_degrade_first_and_keep_a_floor() {
    let p = platforms::by_name("henri").unwrap();
    let data = sweep(&p);
    let s = data
        .placement(NumaId::new(0), NumaId::new(0))
        .expect("measured");
    let nominal_comm = s.comm_alone_mean();

    // Find the first core count where communications are measurably hit,
    // and the first where computations are.
    let comm_hit = s
        .points
        .iter()
        .find(|pt| pt.comm_par < 0.9 * nominal_comm)
        .map(|pt| pt.n_cores)
        .expect("communications eventually degrade");
    let comp_hit = s
        .points
        .iter()
        .find(|pt| pt.comp_par < 0.95 * pt.comp_alone)
        .map(|pt| pt.n_cores)
        .unwrap_or(usize::MAX);
    assert!(
        comm_hit < comp_hit,
        "comm degrades at n={comm_hit}, before comp at n={comp_hit}"
    );

    // The floor: even at full load, communications keep a stable minimum.
    let last = s.points.last().expect("non-empty");
    assert!(
        last.comm_par > 0.15 * nominal_comm,
        "no starvation: {:.2} of {:.2}",
        last.comm_par,
        nominal_comm
    );
    // And the floor is genuinely flat at the tail: the last three points
    // agree within noise.
    let tail: Vec<f64> = s.points.iter().rev().take(3).map(|p| p.comm_par).collect();
    let spread = (tail.iter().cloned().fold(f64::MIN, f64::max)
        - tail.iter().cloned().fold(f64::MAX, f64::min))
        / tail[0];
    assert!(spread < 0.15, "floor not flat: {tail:?}");
}

#[test]
fn occigen_only_computations_are_impacted() {
    // §IV-B d: "On this ancient platform, only computations are impacted
    // when computations and communications do both remote memory
    // accesses."
    let p = platforms::by_name("occigen").unwrap();
    let data = sweep(&p);
    let s = data
        .placement(NumaId::new(1), NumaId::new(1))
        .expect("measured");
    let last = s.points.last().expect("non-empty");
    // Communications untouched...
    assert!(last.comm_par > 0.99 * s.comm_alone_mean());
    // ...while computations lose bandwidth to the DMA stream.
    assert!(last.comp_par < 0.95 * last.comp_alone);
}

#[test]
fn diablo_shows_almost_no_contention() {
    // §IV-B c: plentiful memory bandwidth → overlap is nearly free.
    let p = platforms::by_name("diablo").unwrap();
    let data = sweep(&p);
    for (m_comp, m_comm) in p.topology.placement_combinations() {
        let kept = comm_kept(&data, m_comp, m_comm);
        assert!(
            kept > 0.75,
            "placement ({m_comp},{m_comm}) kept only {kept:.2}"
        );
    }
}

#[test]
fn diablo_network_is_locality_sensitive() {
    // §IV-B c: 12.1 GB/s into node 0 vs 22.4 GB/s into node 1.
    let p = platforms::by_name("diablo").unwrap();
    let data = sweep(&p);
    let slow = data
        .placement(NumaId::new(0), NumaId::new(0))
        .unwrap()
        .comm_alone_mean();
    let fast = data
        .placement(NumaId::new(1), NumaId::new(1))
        .unwrap()
        .comm_alone_mean();
    assert!((10.0..14.0).contains(&slow), "slow path {slow:.1} GB/s");
    assert!((20.0..25.0).contains(&fast), "fast path {fast:.1} GB/s");
}
