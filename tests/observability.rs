//! Observability-layer integration tests: the pipeline emits spans and
//! counters for every stage when a recorder is installed, changes nothing
//! when one is (and when one is not), and exports a pinned JSON schema.

use std::sync::{Arc, Mutex, OnceLock};

use memory_contention::obs;
use memory_contention::obs::Recorder as _;
use memory_contention::prelude::*;

/// The recorder slot is process-global: tests that install one must not
/// overlap. (Poisoning is ignored — a failed test must not cascade.)
fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Run the full pipeline (sweep → calibrate → evaluate) on henri with the
/// event-driven backend, so the discrete-event engine runs too.
fn run_pipeline() -> ErrorBreakdown {
    let platform = platforms::henri();
    let mut config = BenchConfig::event_driven();
    config.noisy = false;
    let sweep = sweep_platform_parallel(&platform, config);
    let (s_local, s_remote) = calibration_placements(&platform);
    let local = sweep.placement(s_local.0, s_local.1).expect("local sample");
    let remote = sweep
        .placement(s_remote.0, s_remote.1)
        .expect("remote sample");
    let model = ContentionModel::calibrate(&platform.topology, local, remote)
        .expect("calibration succeeds");
    evaluate(&model, &sweep, &[s_local, s_remote])
}

#[test]
fn metrics_cover_every_pipeline_stage() {
    let _guard = recorder_lock();
    let registry = Arc::new(obs::Registry::new());
    obs::set_recorder(registry.clone());
    run_pipeline();
    obs::clear_recorder();

    let snap = registry.snapshot();
    // Engine: one counter batch per event-driven run.
    assert!(registry.counter_total("engine.runs") > 0);
    assert!(registry.counter_total("engine.events") > 0);
    assert!(registry.counter_total("engine.solver_invocations") > 0);
    // Sweep: one point counter + wall-time histogram sample per point.
    let points = registry.counter_total("sweep.points");
    assert!(points > 0);
    let point_seconds: u64 = snap
        .histograms
        .iter()
        .filter(|((n, _), _)| n == "sweep.point_seconds")
        .map(|(_, h)| h.count)
        .sum();
    assert_eq!(point_seconds, points);
    // Spans: sweep, calibrate and evaluate stages all traced.
    for stage in ["sweep", "calibrate", "evaluate"] {
        assert!(
            snap.spans.iter().any(|s| s.stage == stage),
            "missing {stage} span in {:?}",
            snap.spans.iter().map(|s| &s.stage).collect::<Vec<_>>()
        );
    }
    // The sweep spans carry the platform tag.
    let sweep_span = snap.spans.iter().find(|s| s.stage == "sweep").unwrap();
    assert!(sweep_span
        .tags
        .iter()
        .any(|(k, v)| k == "platform" && v == "henri"));
}

#[test]
fn instrumented_run_is_bit_identical_to_disabled() {
    let _guard = recorder_lock();
    obs::clear_recorder();
    let baseline = run_pipeline();

    let registry = Arc::new(obs::Registry::new());
    obs::set_recorder(registry.clone());
    let instrumented = run_pipeline();
    obs::clear_recorder();

    // Not approximately equal: *bit-identical*. Instrumentation must never
    // reorder a float summation or perturb a measurement.
    assert_eq!(baseline, instrumented);
    assert!(
        registry.counter_total("engine.runs") > 0,
        "recorder saw the run"
    );
}

#[test]
fn disabled_recorder_reports_disabled() {
    let _guard = recorder_lock();
    obs::clear_recorder();
    assert!(!obs::enabled());
    assert!(obs::recorder().is_none());
}

#[test]
fn metrics_json_schema_matches_golden_file() {
    // Pin the exporter schema against checked-in golden files. Spans are
    // recorded via `record_span` (deterministic timestamps) — wall-clock
    // spans share the exact same rendering path.
    let registry = obs::Registry::new();
    registry.add(
        "engine.runs",
        &[("platform", obs::TagValue::Str("henri"))],
        18,
    );
    registry.add(
        "calibrate.repairs",
        &[("rule", obs::TagValue::Str("duplicate-collapsed"))],
        2,
    );
    registry.observe(
        "sweep.point_seconds",
        &[
            ("platform", obs::TagValue::Str("henri")),
            ("m_comp", obs::TagValue::U64(0)),
        ],
        0.25,
    );
    registry.observe(
        "sweep.point_seconds",
        &[
            // Same series as above: tag order must not matter.
            ("m_comp", obs::TagValue::U64(0)),
            ("platform", obs::TagValue::Str("henri")),
        ],
        0.75,
    );
    registry.observe(
        "evaluate.mape_comm_pct",
        &[
            ("m_comp", obs::TagValue::U64(1)),
            ("m_comm", obs::TagValue::U64(0)),
        ],
        2.5,
    );
    registry.record_span(
        "sweep",
        &[
            ("platform", obs::TagValue::Str("henri")),
            ("mode", obs::TagValue::Str("parallel")),
        ],
        0.0,
        1.5,
    );
    registry.record_span(
        "calibrate",
        &[("m_comp", obs::TagValue::U64(0))],
        1.5,
        0.125,
    );

    assert_eq!(
        registry.metrics_json_lines(),
        include_str!("golden/metrics.jsonl"),
        "metrics JSON schema drifted from tests/golden/metrics.jsonl"
    );
    assert_eq!(
        registry.trace_json_lines(),
        include_str!("golden/trace.jsonl"),
        "trace JSON schema drifted from tests/golden/trace.jsonl"
    );
}
