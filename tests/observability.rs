//! Observability-layer integration tests: the pipeline emits spans and
//! counters for every stage when a recorder is installed, changes nothing
//! when one is (and when one is not), and exports a pinned JSON schema.

use std::sync::{Arc, Mutex, OnceLock};

use memory_contention::obs;
use memory_contention::obs::Recorder as _;
use memory_contention::prelude::*;

/// The recorder slot is process-global: tests that install one must not
/// overlap. (Poisoning is ignored — a failed test must not cascade.)
fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Run the full pipeline (sweep → calibrate → evaluate) on henri with the
/// event-driven backend, so the discrete-event engine runs too.
fn run_pipeline() -> ErrorBreakdown {
    let platform = platforms::henri();
    let mut config = BenchConfig::event_driven();
    config.noisy = false;
    let sweep = sweep_platform_parallel(&platform, config);
    let (s_local, s_remote) = calibration_placements(&platform);
    let local = sweep.placement(s_local.0, s_local.1).expect("local sample");
    let remote = sweep
        .placement(s_remote.0, s_remote.1)
        .expect("remote sample");
    let model = ContentionModel::calibrate(&platform.topology, local, remote)
        .expect("calibration succeeds");
    evaluate(&model, &sweep, &[s_local, s_remote])
}

#[test]
fn metrics_cover_every_pipeline_stage() {
    let _guard = recorder_lock();
    let registry = Arc::new(obs::Registry::new());
    obs::set_recorder(registry.clone());
    run_pipeline();
    obs::clear_recorder();

    let snap = registry.snapshot();
    // Engine: one counter batch per event-driven run.
    assert!(registry.counter_total("engine.runs") > 0);
    assert!(registry.counter_total("engine.events") > 0);
    assert!(registry.counter_total("engine.solver_invocations") > 0);
    // Sweep: one point counter + wall-time histogram sample per point.
    let points = registry.counter_total("sweep.points");
    assert!(points > 0);
    let point_seconds: u64 = snap
        .histograms
        .iter()
        .filter(|((n, _), _)| n == "sweep.point_seconds")
        .map(|(_, h)| h.count)
        .sum();
    assert_eq!(point_seconds, points);
    // Spans: sweep, calibrate and evaluate stages all traced.
    for stage in ["sweep", "calibrate", "evaluate"] {
        assert!(
            snap.spans.iter().any(|s| s.stage == stage),
            "missing {stage} span in {:?}",
            snap.spans.iter().map(|s| &s.stage).collect::<Vec<_>>()
        );
    }
    // The sweep spans carry the platform tag.
    let sweep_span = snap.spans.iter().find(|s| s.stage == "sweep").unwrap();
    assert!(sweep_span
        .tags
        .iter()
        .any(|(k, v)| k == "platform" && v == "henri"));
}

#[test]
fn instrumented_run_is_bit_identical_to_disabled() {
    let _guard = recorder_lock();
    obs::clear_recorder();
    let baseline = run_pipeline();

    let registry = Arc::new(obs::Registry::new());
    obs::set_recorder(registry.clone());
    let instrumented = run_pipeline();
    obs::clear_recorder();

    // Not approximately equal: *bit-identical*. Instrumentation must never
    // reorder a float summation or perturb a measurement.
    assert_eq!(baseline, instrumented);
    assert!(
        registry.counter_total("engine.runs") > 0,
        "recorder saw the run"
    );
}

#[test]
fn disabled_recorder_reports_disabled() {
    let _guard = recorder_lock();
    obs::clear_recorder();
    assert!(!obs::enabled());
    assert!(obs::recorder().is_none());
}

/// Deterministic registry contents shared by the exporter golden tests.
/// Spans are recorded via `record_span` (deterministic timestamps) —
/// wall-clock spans share the exact same rendering path.
fn golden_registry() -> obs::Registry {
    let registry = obs::Registry::new();
    registry.add(
        "engine.runs",
        &[("platform", obs::TagValue::Str("henri"))],
        18,
    );
    registry.add(
        "calibrate.repairs",
        &[("rule", obs::TagValue::Str("duplicate-collapsed"))],
        2,
    );
    registry.observe(
        "sweep.point_seconds",
        &[
            ("platform", obs::TagValue::Str("henri")),
            ("m_comp", obs::TagValue::U64(0)),
        ],
        0.25,
    );
    registry.observe(
        "sweep.point_seconds",
        &[
            // Same series as above: tag order must not matter.
            ("m_comp", obs::TagValue::U64(0)),
            ("platform", obs::TagValue::Str("henri")),
        ],
        0.75,
    );
    registry.observe(
        "evaluate.mape_comm_pct",
        &[
            ("m_comp", obs::TagValue::U64(1)),
            ("m_comm", obs::TagValue::U64(0)),
        ],
        2.5,
    );
    registry.record_span(
        "sweep",
        &[
            ("platform", obs::TagValue::Str("henri")),
            ("mode", obs::TagValue::Str("parallel")),
        ],
        0.0,
        1.5,
    );
    registry.record_span(
        "calibrate",
        &[("m_comp", obs::TagValue::U64(0))],
        1.5,
        0.125,
    );
    registry
}

#[test]
fn metrics_json_schema_matches_golden_file() {
    // Pin the exporter schema against checked-in golden files.
    let registry = golden_registry();
    assert_eq!(
        registry.metrics_json_lines(),
        include_str!("golden/metrics.jsonl"),
        "metrics JSON schema drifted from tests/golden/metrics.jsonl"
    );
    assert_eq!(
        registry.trace_json_lines(),
        include_str!("golden/trace.jsonl"),
        "trace JSON schema drifted from tests/golden/trace.jsonl"
    );
}

const CHROME_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chrome_trace.json"
);

#[test]
fn chrome_trace_schema_matches_golden_file() {
    // Pin the Chrome trace_event exporter byte for byte: pipeline spans
    // on the pipeline track, rank-tagged spans on per-rank replay
    // tracks, node-tagged spans on per-node sched tracks, tags
    // flattened into `args`, metadata events naming every track.
    //
    // Regenerate after an intentional schema change:
    // `UPDATE_GOLDEN=1 cargo test --test observability`.
    let registry = golden_registry();
    registry.record_span("compute", &[("rank", obs::TagValue::U64(0))], 0.0, 0.5);
    registry.record_span("send", &[("rank", obs::TagValue::U64(1))], 0.5, 0.25);
    registry.record_span(
        "sched.job",
        &[
            ("job", obs::TagValue::Str("solver")),
            ("node", obs::TagValue::U64(1)),
            ("policy", obs::TagValue::Str("first_fit")),
        ],
        0.0,
        2.0,
    );
    let rendered = registry.chrome_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(CHROME_GOLDEN_PATH, &rendered).expect("golden chrome trace written");
        return;
    }
    let golden = std::fs::read_to_string(CHROME_GOLDEN_PATH).expect("golden chrome trace present");
    assert_eq!(
        rendered, golden,
        "chrome trace schema drifted from tests/golden/chrome_trace.json \
         (rerun with UPDATE_GOLDEN=1 if the change is intentional)"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_finite_timestamps() {
    // A real instrumented run (not hand-built spans): replay a synthetic
    // trace with per-rank timeline spans bridged in, then require the
    // chrome export to parse as one JSON array whose `X` events all
    // carry finite, non-negative `ts`/`dur` and the pinned pid scheme.
    let _guard = recorder_lock();
    let registry = Arc::new(obs::Registry::new());
    obs::set_recorder(registry.clone());
    let platform = platforms::henri();
    let trace = memory_contention::replay::generate::allreduce_step(
        &memory_contention::replay::generate::GenParams {
            ranks: 2,
            iters: 1,
            compute_bytes: 32 << 20,
            comm_bytes: 4 << 20,
            ..Default::default()
        },
    );
    let outcome = memory_contention::replay::replay(
        &platform,
        &trace,
        &memory_contention::replay::ReplayConfig::default(),
    )
    .unwrap();
    memory_contention::replay::report::record_timeline_spans(registry.as_ref(), &outcome);
    obs::clear_recorder();

    let rendered = registry.chrome_trace();
    let doc = mc_json::Json::parse(&rendered).expect("chrome trace parses as JSON");
    let events = doc.as_array().expect("chrome trace is a JSON array");
    assert!(!events.is_empty());
    let mut on_rank_tracks = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
        match ph {
            "X" => {
                for key in ["ts", "dur"] {
                    let v = ev.get(key).and_then(|v| v.as_f64()).expect(key);
                    assert!(v.is_finite() && v >= 0.0, "{key}={v}");
                }
                let pid = ev.get("pid").and_then(|v| v.as_u64()).expect("pid");
                assert!((1..=3).contains(&pid), "unknown pid {pid}");
                if pid == 2 {
                    on_rank_tracks += 1;
                }
            }
            "M" => {
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap();
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata {name}"
                );
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    // Every rank-tagged timeline span made it out as a complete event
    // on the replay process's per-rank tracks (pid 2); the engine's own
    // aggregate `replay` span rides on the pipeline track.
    let spans: usize = outcome.contended.timelines.iter().map(Vec::len).sum();
    assert_eq!(on_rank_tracks, spans);
}

#[test]
fn open_spans_reach_both_exporters_with_the_incomplete_marker() {
    // A span still open when the export happens (a crashed or mid-flight
    // stage) must surface — flagged — in the JSONL trace and in the
    // chrome args, not silently vanish.
    let registry = obs::Registry::new();
    registry.record_span("sweep", &[], 0.0, 1.0);
    let _open = registry.span_enter("calibrate", &[]);
    let jsonl = registry.trace_json_lines();
    let complete_line = jsonl.lines().find(|l| l.contains("\"sweep\"")).unwrap();
    let open_line = jsonl.lines().find(|l| l.contains("\"calibrate\"")).unwrap();
    assert!(!complete_line.contains("incomplete"), "{complete_line}");
    assert!(open_line.ends_with(",\"incomplete\":true}"), "{open_line}");

    let chrome = registry.chrome_trace();
    let doc = mc_json::Json::parse(&chrome).unwrap();
    let open_event = doc
        .as_array()
        .unwrap()
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("calibrate"))
        .expect("open span exported");
    assert!(matches!(
        open_event.get("args").and_then(|a| a.get("incomplete")),
        Some(mc_json::Json::Bool(true))
    ));
}
