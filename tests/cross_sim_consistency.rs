//! Cross-simulator consistency: the three execution paths that move bytes
//! through the same fabric — the analytic solver, the discrete-event
//! engine, and the request-level MPI world — must agree on steady-state
//! bandwidths.

use memory_contention::memsim::{Engine, Fabric};
use memory_contention::netsim::NicModel;
use memory_contention::prelude::*;

const MB64: u64 = 64 << 20;

/// Receive time of one 64 MiB message in the MPI world while `cores` cores
/// stream to `comp_numa` on the receiver.
fn mpi_receive_time(
    platform: &Platform,
    cores: usize,
    comp_numa: NumaId,
    comm_numa: NumaId,
) -> f64 {
    let mut world = World::pair(platform);
    if cores > 0 {
        world
            .start_compute(0, comp_numa, cores, 64 << 30)
            .expect("background compute");
    }
    let recv = world
        .irecv(0, 1, comm_numa, MB64, Tag(0))
        .expect("post recv");
    world
        .isend(1, 0, comm_numa, MB64, Tag(0))
        .expect("post send");
    let start = world.now();
    world.wait(recv).expect("message arrives") - start
}

#[test]
fn mpi_world_matches_solver_rates_under_contention() {
    let platform = platforms::henri();
    let fabric = Fabric::new(&platform);
    for &cores in &[0usize, 8, 17] {
        let streams = Fabric::benchmark_streams(cores, Some(NumaId::new(0)), Some(NumaId::new(0)));
        let solved = fabric.solve(&streams);
        let dma_rate = solved.dma_total(&streams); // GB/s

        let t = mpi_receive_time(&platform, cores, NumaId::new(0), NumaId::new(0));
        let observed = MB64 as f64 / t / 1e9;
        let rel = (observed - dma_rate).abs() / dma_rate;
        assert!(
            rel < 0.05,
            "cores={cores}: mpi {observed:.2} GB/s vs solver {dma_rate:.2} GB/s"
        );
    }
}

#[test]
fn engine_matches_solver_in_steady_state() {
    let platform = platforms::dahu();
    let fabric = Fabric::new(&platform);
    let nic = NicModel::new(&fabric);
    for &cores in &[1usize, 10, 15] {
        let streams = Fabric::benchmark_streams(cores, Some(NumaId::new(0)), Some(NumaId::new(0)));
        let solved = fabric.solve(&streams);

        let mut acts: Vec<_> = (0..cores)
            .map(|i| memory_contention::memsim::Activity {
                kind: memory_contention::memsim::ActivityKind::Compute {
                    numa: NumaId::new(0),
                    bytes_per_pass: 256e6,
                    pass_overhead: 2e-6,
                },
                start: i as f64 * 1.1e-5,
            })
            .collect();
        acts.push(nic.receive_activity(NumaId::new(0), MB64, 0.0));
        let report = Engine::new(&fabric).run(&acts, 0.05, 0.35);

        let comp_engine = report.compute_bandwidth(&acts);
        let comp_solver = solved.cpu_total(&streams);
        assert!(
            (comp_engine - comp_solver).abs() / comp_solver < 0.03,
            "cores={cores}: engine {comp_engine:.2} vs solver {comp_solver:.2}"
        );
        let comm_engine = report.comm_bandwidth(&acts);
        let comm_solver = solved.dma_total(&streams);
        assert!(
            (comm_engine - comm_solver).abs() / comm_solver < 0.06,
            "cores={cores}: engine {comm_engine:.2} vs solver {comm_solver:.2}"
        );
    }
}

#[test]
fn membench_backends_agree_across_a_whole_placement() {
    let platform = platforms::occigen();
    let exact_analytic = BenchRunner::new(&platform, BenchConfig::exact());
    let mut ed = BenchConfig::event_driven();
    ed.noisy = false;
    let exact_event = BenchRunner::new(&platform, ed);
    let a = exact_analytic.run_placement(NumaId::new(0), NumaId::new(0));
    let e = exact_event.run_placement(NumaId::new(0), NumaId::new(0));
    for (pa, pe) in a.points.iter().zip(&e.points) {
        assert!(
            (pa.comp_par - pe.comp_par).abs() / pa.comp_par < 0.04,
            "n={}: {} vs {}",
            pa.n_cores,
            pa.comp_par,
            pe.comp_par
        );
        assert!(
            (pa.comm_par - pe.comm_par).abs() / pa.comm_par < 0.06,
            "n={}: {} vs {}",
            pa.n_cores,
            pa.comm_par,
            pe.comm_par
        );
    }
}

#[test]
fn overlap_beats_sequential_in_the_mpi_world() {
    // Overlap must save time on every platform (that is why applications
    // do it), even where contention bites.
    for platform in platforms::all() {
        let numa = NumaId::new(0);
        let cores = platform.max_compute_cores();
        let per_core: u64 = 256 << 20;

        // Sequential: compute, then receive.
        let mut w = World::pair(&platform);
        let job = w.start_compute(0, numa, cores, per_core).expect("compute");
        w.wait_job(job).expect("compute done");
        let r = w.irecv(0, 1, numa, MB64, Tag(0)).expect("recv");
        w.isend(1, 0, numa, MB64, Tag(0)).expect("send");
        w.wait(r).expect("received");
        let sequential = w.now();

        // Overlapped.
        let mut w = World::pair(&platform);
        let r = w.irecv(0, 1, numa, MB64, Tag(0)).expect("recv");
        w.isend(1, 0, numa, MB64, Tag(0)).expect("send");
        let job = w.start_compute(0, numa, cores, per_core).expect("compute");
        w.wait_job(job).expect("compute done");
        w.wait(r).expect("received");
        let overlapped = w.now();

        assert!(
            overlapped < sequential,
            "{}: overlap {overlapped:.4} s not faster than sequential {sequential:.4} s",
            platform.name()
        );
    }
}
