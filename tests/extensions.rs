//! Tests of the future-work extensions (§VI of the paper): different
//! compute kernels, bidirectional communications, the LLC model — and the
//! key property that the model, *recalibrated* for the new configuration,
//! keeps its accuracy (the paper scopes its validity to the kernel and
//! message size used at calibration, §IV-C1).

use memory_contention::membench::{CommPattern, ComputeKernel};
use memory_contention::memsim::LlcSpec;
use memory_contention::prelude::*;

/// Full pipeline (measure → calibrate → evaluate) for a configuration.
fn average_error(platform: &Platform, config: BenchConfig) -> f64 {
    let sweep = sweep_platform_parallel(platform, config);
    let (s_local, s_remote) = calibration_placements(platform);
    let model = ContentionModel::calibrate(
        &platform.topology,
        sweep.placement(s_local.0, s_local.1).expect("local sample"),
        sweep
            .placement(s_remote.0, s_remote.1)
            .expect("remote sample"),
    )
    .expect("calibration succeeds");
    evaluate(&model, &sweep, &[s_local, s_remote]).average
}

/// Communication bandwidth kept at full compute load in the local config.
fn comm_kept_at_full_load(platform: &Platform, config: BenchConfig) -> f64 {
    let runner = BenchRunner::new(platform, config);
    let numa = NumaId::new(0);
    let n = platform.max_compute_cores();
    let alone = runner.comm_alone(n, numa);
    let (_, par) = runner.parallel(n, numa, numa);
    par / alone
}

#[test]
fn heavier_kernels_increase_contention() {
    let p = platforms::by_name("henri").unwrap();
    let base = BenchConfig::exact();
    // At a mid-range core count the memset kernel leaves the NIC alone but
    // the triad kernel already squeezes it.
    let runner_memset = BenchRunner::new(&p, base);
    let runner_triad = BenchRunner::new(&p, base.with_kernel(ComputeKernel::triad_nt()));
    let n = 10;
    let numa = NumaId::new(0);
    let (_, comm_memset) = runner_memset.parallel(n, numa, numa);
    let (_, comm_triad) = runner_triad.parallel(n, numa, numa);
    assert!(
        comm_triad < comm_memset,
        "triad ({comm_triad:.2}) must squeeze comm harder than memset ({comm_memset:.2})"
    );
}

#[test]
fn compute_bound_kernels_remove_contention() {
    // §IV-C1: "other kernels or message size should produce less
    // contention". With 4 flops/byte the cores need a fifth of the
    // bandwidth, so even the full socket cannot threaten the NIC.
    let p = platforms::by_name("henri").unwrap();
    let cfg = BenchConfig::exact().with_kernel(ComputeKernel::compute_bound(4.0));
    let kept = comm_kept_at_full_load(&p, cfg);
    assert!(kept > 0.95, "comm kept only {kept:.2}");
}

#[test]
fn model_recalibrated_for_copy_kernel_stays_accurate() {
    let p = platforms::by_name("henri").unwrap();
    let err = average_error(
        &p,
        BenchConfig::default().with_kernel(ComputeKernel::copy_nt()),
    );
    assert!(err < 4.0, "copy-kernel error {err:.2} %");
}

#[test]
fn model_recalibrated_for_pingpong_stays_accurate() {
    let p = platforms::by_name("henri").unwrap();
    let err = average_error(
        &p,
        BenchConfig::default().with_pattern(CommPattern::PingPong),
    );
    assert!(err < 5.0, "ping-pong error {err:.2} %");
}

#[test]
fn pingpong_halves_per_direction_bandwidth() {
    // Both directions share the NIC wire: each direction of a ping-pong
    // gets roughly half the unidirectional bandwidth.
    let p = platforms::by_name("henri").unwrap();
    let numa = NumaId::new(0);
    let recv_only = BenchRunner::new(&p, BenchConfig::exact());
    let pingpong = BenchRunner::new(&p, BenchConfig::exact().with_pattern(CommPattern::PingPong));
    let uni = recv_only.comm_alone(1, numa);
    let bi = pingpong.comm_alone(1, numa);
    assert!(
        (bi / uni - 0.5).abs() < 0.1,
        "per-direction ping-pong {bi:.2} vs unidirectional {uni:.2}"
    );
}

#[test]
fn send_only_mirrors_recv_only_on_symmetric_machines() {
    let p = platforms::by_name("henri").unwrap();
    let numa = NumaId::new(0);
    let recv = BenchRunner::new(&p, BenchConfig::exact()).comm_alone(1, numa);
    let send = BenchRunner::new(&p, BenchConfig::exact().with_pattern(CommPattern::SendOnly))
        .comm_alone(1, numa);
    assert!(
        (recv - send).abs() / recv < 0.02,
        "recv {recv:.2} vs send {send:.2}"
    );
}

#[test]
fn llc_absorbs_cache_resident_working_sets() {
    // Cacheable kernel with a per-core working set that fits the LLC:
    // no memory traffic reaches the controllers, so the NIC keeps its
    // nominal bandwidth even at full core count.
    let p = platforms::by_name("henri").unwrap();
    let mut cfg = BenchConfig::exact()
        .with_kernel(ComputeKernel::memset_cacheable())
        .with_llc(LlcSpec::mib(1024.0)); // generous cache
    cfg.bytes_per_pass = 1 << 20; // 1 MiB per core
    let kept = comm_kept_at_full_load(&p, cfg);
    assert!(kept > 0.95, "comm kept only {kept:.2}");
}

#[test]
fn llc_does_not_help_oversized_working_sets() {
    let p = platforms::by_name("henri").unwrap();
    let with_small_llc = BenchConfig::exact()
        .with_kernel(ComputeKernel::memset_cacheable())
        .with_llc(LlcSpec::mib(24.75)); // realistic Skylake LLC, 256 MiB/core WS
    let kept_cached = comm_kept_at_full_load(&p, with_small_llc);
    let kept_nt = comm_kept_at_full_load(&p, BenchConfig::exact());
    // A 24.75 MiB cache is irrelevant against 17 × 256 MiB working sets:
    // contention is as bad as with non-temporal stores (within a few %).
    assert!(
        (kept_cached - kept_nt).abs() < 0.05,
        "cached {kept_cached:.2} vs nt {kept_nt:.2}"
    );
}

#[test]
fn nt_kernels_ignore_the_llc_entirely() {
    // The paper's kernel bypasses the cache: adding an LLC model must not
    // change a single measurement.
    let p = platforms::by_name("henri").unwrap();
    let plain = BenchRunner::new(&p, BenchConfig::default());
    let with_llc = BenchRunner::new(&p, BenchConfig::default().with_llc(LlcSpec::mib(64.0)));
    let numa = NumaId::new(0);
    for n in [1usize, 8, 17] {
        assert_eq!(
            plain.parallel(n, numa, numa),
            with_llc.parallel(n, numa, numa)
        );
    }
}

#[test]
fn kernel_sweep_orders_contention_by_traffic() {
    // memset < copy < triad in traffic ⇒ comm kept decreases monotonically.
    let p = platforms::by_name("dahu").unwrap();
    let kept: Vec<f64> = [
        ComputeKernel::compute_bound(2.0),
        ComputeKernel::memset_nt(),
        ComputeKernel::copy_nt(),
        ComputeKernel::triad_nt(),
    ]
    .into_iter()
    .map(|k| comm_kept_at_full_load(&p, BenchConfig::exact().with_kernel(k)))
    .collect();
    for w in kept.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "contention must grow with kernel traffic: {kept:?}"
        );
    }
}
