//! Fault-injection harness (heavy): calibration stability under sweep
//! perturbations and engine behaviour under activity-level faults, across
//! several platforms and many seeds.
//!
//! Gated behind the `fault-injection` feature so the tier-1 suite stays
//! fast:
//!
//! ```text
//! cargo test -q --features fault-injection --test fault_injection
//! ```

#![cfg(feature = "fault-injection")]

use memory_contention::membench::faults::Fault;
use memory_contention::membench::record::SweepColumn;
use memory_contention::membench::{BenchConfig, BenchRunner, PlacementSweep};
use memory_contention::memsim::faults::{inject_all, EngineFault};
use memory_contention::memsim::{Activity, ActivityKind, Engine, Fabric};
use memory_contention::model::robustness::fault_spread;
use memory_contention::model::CalibrationError;
use memory_contention::topology::{platforms, NumaId, Platform, SocketId};

fn local_sweep(platform: &Platform) -> PlacementSweep {
    let numa = platform.topology.first_numa_of(SocketId::new(0));
    BenchRunner::new(platform, BenchConfig::default()).run_placement(numa, numa)
}

#[test]
fn survivable_faults_bounded_on_every_platform() {
    for platform in [platforms::henri(), platforms::occigen(), platforms::dahu()] {
        let sweep = local_sweep(&platform);
        let faults = [
            Fault::DropPoints { fraction: 0.2 },
            Fault::OutlierSpike {
                column: SweepColumn::CompPar,
                factor: 1.05,
            },
            Fault::ShufflePoints,
        ];
        let report = fault_spread(&sweep, &faults, 16);
        assert!(
            report.failures.is_empty(),
            "{}: survivable faults rejected: {:?}",
            platform.name(),
            report.failures
        );
        let spread = report.spread.expect("survivors exist");
        assert!(
            spread.b_comp_seq.cv() < 0.02,
            "{}: {:?}",
            platform.name(),
            spread.b_comp_seq
        );
        assert!(
            spread.b_comm_seq.cv() < 0.05,
            "{}: {:?}",
            platform.name(),
            spread.b_comm_seq
        );
        assert!(
            spread.t_max_par.cv() < 0.10,
            "{}: {:?}",
            platform.name(),
            spread.t_max_par
        );
    }
}

#[test]
fn each_poisoning_fault_maps_to_its_own_error() {
    let sweep = local_sweep(&platforms::henri());
    let nan = fault_spread(
        &sweep,
        &[Fault::NanPoison {
            column: SweepColumn::CompAlone,
        }],
        6,
    );
    assert!(nan
        .failures
        .iter()
        .all(|(_, e)| matches!(e, CalibrationError::NonFinite { .. })));
    assert_eq!(nan.failures.len(), 6);

    let zero = fault_spread(
        &sweep,
        &[Fault::ZeroColumn {
            column: SweepColumn::CommAlone,
        }],
        6,
    );
    assert!(zero
        .failures
        .iter()
        .all(|(_, e)| matches!(e, CalibrationError::NoCommBandwidth { .. })));

    let dup = fault_spread(&sweep, &[Fault::ConflictingDuplicate { factor: 3.0 }], 6);
    assert!(dup
        .failures
        .iter()
        .all(|(_, e)| matches!(e, CalibrationError::DuplicateCores { .. })));
}

#[test]
fn mixed_faults_partition_into_survivors_and_typed_failures() {
    // A NaN poison on top of survivable faults: every seed must either
    // calibrate or be rejected with NonFinite — nothing in between, and
    // certainly no panic.
    let sweep = local_sweep(&platforms::henri());
    let faults = [
        Fault::DropPoints { fraction: 0.3 },
        Fault::NanPoison {
            column: SweepColumn::CommPar,
        },
    ];
    let report = fault_spread(&sweep, &faults, 20);
    assert_eq!(report.attempted, 20);
    assert_eq!(report.params.len() + report.failures.len(), 20);
    assert!(report
        .failures
        .iter()
        .all(|(_, e)| matches!(e, CalibrationError::NonFinite { .. })));
    // The poison lands on a random point of a non-empty sweep, so every
    // seed is in fact rejected here; assert the harness quantified that.
    assert_eq!(report.survival_rate(), 0.0);
}

#[test]
fn repeated_harness_runs_are_deterministic() {
    let sweep = local_sweep(&platforms::henri());
    let faults = [
        Fault::DropPoints { fraction: 0.25 },
        Fault::OutlierSpike {
            column: SweepColumn::CommPar,
            factor: 0.9,
        },
    ];
    let a = fault_spread(&sweep, &faults, 10);
    let b = fault_spread(&sweep, &faults, 10);
    assert_eq!(a, b);
}

// ---- engine-level injection ------------------------------------------

fn contended_scenario() -> Vec<Activity> {
    let mut acts: Vec<Activity> = (0..8)
        .map(|i| Activity {
            kind: ActivityKind::Compute {
                numa: NumaId::new(0),
                bytes_per_pass: 64e6,
                pass_overhead: 2e-6,
            },
            start: i as f64 * 1.3e-5,
        })
        .collect();
    acts.push(Activity {
        kind: ActivityKind::CommRecv {
            numa: NumaId::new(0),
            msg_bytes: 64e6,
            handshake: 4e-6,
            gap: 1e-6,
        },
        start: 0.0,
    });
    acts
}

#[test]
fn stalled_activities_never_deadlock_the_engine() {
    let p = platforms::henri();
    let f = Fabric::new(&p);
    let engine = Engine::new(&f);
    for victim in 0..9 {
        let mut acts = contended_scenario();
        inject_all(
            &mut acts,
            &[EngineFault::Stall {
                victim,
                delay: 0.08,
            }],
        );
        let report = engine.run(&acts, 0.02, 0.1);
        assert_eq!(report.window, (0.02, 0.1));
        // Everyone except the stalled victim made progress.
        for (i, a) in report.activities.iter().enumerate() {
            if i != victim {
                assert!(a.total_bytes > 0.0, "victim {victim}, activity {i}");
            }
        }
    }
}

#[test]
fn slowed_comm_frees_bandwidth_for_compute() {
    let p = platforms::henri();
    let f = Fabric::new(&p);
    let engine = Engine::new(&f);
    let clean = contended_scenario();
    let mut faulty = contended_scenario();
    inject_all(
        &mut faulty,
        &[EngineFault::SlowDown {
            victim: 8,
            factor: 200.0,
        }],
    );
    let base = engine.run(&clean, 0.05, 0.3);
    let got = engine.run(&faulty, 0.05, 0.3);
    let base_comp = base.compute_bandwidth(&clean);
    let got_comp = got.compute_bandwidth(&faulty);
    let base_comm = base.comm_bandwidth(&clean);
    let got_comm = got.comm_bandwidth(&faulty);
    assert!(got_comm < base_comm, "{got_comm} vs {base_comm}");
    assert!(got_comp >= base_comp - 1e-9, "{got_comp} vs {base_comp}");
}
