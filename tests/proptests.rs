//! Property-based tests (proptest) on the core invariants:
//! solver conservation laws, model equation properties, and calibration
//! robustness under random noise.

use proptest::prelude::*;

use memory_contention::membench::{PlacementSweep, SweepPoint};
use memory_contention::memsim::{allocate, Fabric, FlowClass, FlowReq, StreamSpec};
use memory_contention::model::{calibrate, InstantiatedModel, ModelParams};
use memory_contention::prelude::*;

// ---------------------------------------------------------------- solver

/// Random flow over up to 4 resources.
fn arb_flow() -> impl Strategy<Value = FlowReq> {
    (
        proptest::collection::vec(0usize..4, 1..4),
        0.0f64..40.0,
        0.0f64..1.0,
        prop_oneof![Just(FlowClass::Cpu), Just(FlowClass::Dma)],
    )
        .prop_map(|(mut path, demand, floor_frac, class)| {
            path.sort_unstable();
            path.dedup();
            FlowReq {
                path,
                demand,
                floor: if class == FlowClass::Dma {
                    demand * floor_frac
                } else {
                    0.0
                },
                class,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_never_overcommits_resources(
        flows in proptest::collection::vec(arb_flow(), 0..12),
        caps in proptest::collection::vec(1.0f64..200.0, 4),
    ) {
        let alloc = allocate(&caps, &flows);
        for (load, cap) in alloc.resource_load.iter().zip(&caps) {
            prop_assert!(*load <= cap + 1e-6, "load {load} > cap {cap}");
        }
    }

    #[test]
    fn solver_never_exceeds_demand_and_never_goes_negative(
        flows in proptest::collection::vec(arb_flow(), 0..12),
        caps in proptest::collection::vec(1.0f64..200.0, 4),
    ) {
        let alloc = allocate(&caps, &flows);
        for (rate, flow) in alloc.rates.iter().zip(&flows) {
            prop_assert!(*rate >= -1e-9);
            prop_assert!(*rate <= flow.demand + 1e-6, "rate {rate} > demand {}", flow.demand);
        }
    }

    #[test]
    fn solver_honours_feasible_floors(
        cpu_count in 0usize..10,
        dma_demand in 1.0f64..20.0,
        floor_frac in 0.05f64..0.9,
        cap in 30.0f64..200.0,
    ) {
        // One resource; floors are feasible by construction (floor < cap).
        let floor = dma_demand * floor_frac;
        let mut flows: Vec<FlowReq> = (0..cpu_count).map(|_| FlowReq::cpu(vec![0], 6.0)).collect();
        flows.push(FlowReq::dma(vec![0], dma_demand, floor));
        let alloc = allocate(&[cap], &flows);
        prop_assert!(
            alloc.rates[cpu_count] >= floor.min(dma_demand) - 1e-6,
            "dma got {} < floor {floor}",
            alloc.rates[cpu_count]
        );
    }

    #[test]
    fn solver_is_monotone_in_capacity(
        flows in proptest::collection::vec(arb_flow(), 1..8),
        cap in 10.0f64..100.0,
    ) {
        // Growing every capacity must not reduce the total allocation.
        let caps_small = vec![cap; 4];
        let caps_big = vec![cap * 1.5; 4];
        let total = |caps: &[f64]| allocate(caps, &flows).rates.iter().sum::<f64>();
        prop_assert!(total(&caps_big) >= total(&caps_small) - 1e-6);
    }
}

// ----------------------------------------------------------------- model

/// Random but structurally valid model parameters.
fn arb_params() -> impl Strategy<Value = ModelParams> {
    (
        2usize..16,     // n_max_par
        0usize..6,      // gap to n_max_seq
        30.0f64..150.0, // t_max_par
        0.0f64..2.0,    // delta_l
        0.0f64..2.0,    // delta_r
        2.0f64..8.0,    // b_comp_seq
        4.0f64..25.0,   // b_comm_seq
        0.05f64..1.0,   // alpha
    )
        .prop_map(
            |(n_max_par, gap, t_max_par, delta_l, delta_r, b_comp_seq, b_comm_seq, alpha)| {
                let n_max_seq = n_max_par + gap;
                let t_max2_par = t_max_par - delta_l * gap as f64;
                ModelParams {
                    n_max_par,
                    t_max_par,
                    n_max_seq,
                    t_max_seq: (n_max_seq as f64 * b_comp_seq).min(t_max_par),
                    t_max2_par,
                    delta_l,
                    delta_r,
                    b_comp_seq,
                    b_comm_seq,
                    alpha,
                }
            },
        )
        .prop_filter("positive t_max2_par", |p| p.t_max2_par > 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn model_totals_never_exceed_capacity(params in arb_params(), n in 1usize..40) {
        params.validate().unwrap();
        let m = InstantiatedModel::new(params);
        let pred = m.predict_parallel(n);
        prop_assert!(pred.comp >= -1e-9);
        prop_assert!(pred.comm >= -1e-9);
        prop_assert!(
            pred.total() <= m.total_capacity(n) + 1e-9,
            "total {} > T({n}) {}",
            pred.total(),
            m.total_capacity(n)
        );
    }

    #[test]
    fn model_comm_bounded_by_nominal_and_floor(params in arb_params(), n in 1usize..40) {
        let m = InstantiatedModel::new(params);
        let pred = m.predict_parallel(n);
        prop_assert!(pred.comm <= params.b_comm_seq + 1e-9);
        // Once saturated, comm never drops below α·Bcomm_seq — unless the
        // extrapolated capacity itself is smaller than the floor (far
        // beyond the calibrated core range).
        if !m.is_unsaturated(n) {
            let floor = (params.alpha * params.b_comm_seq).min(m.total_capacity(n));
            prop_assert!(
                pred.comm >= floor - 1e-9,
                "comm {} below floor {floor}", pred.comm
            );
        }
    }

    #[test]
    fn model_capacity_is_non_increasing(params in arb_params()) {
        let m = InstantiatedModel::new(params);
        let mut last = f64::INFINITY;
        for n in 1..=40 {
            let t = m.total_capacity(n);
            prop_assert!(t <= last + 1e-9, "T({n}) = {t} increased");
            last = t;
        }
    }

    #[test]
    fn model_comm_is_non_increasing_in_cores(params in arb_params()) {
        let m = InstantiatedModel::new(params);
        let mut last = f64::INFINITY;
        for n in 1..=40 {
            let c = m.predict_parallel(n).comm;
            prop_assert!(c <= last + 1e-9, "comm({n}) = {c} increased from {last}");
            last = c;
        }
    }

    #[test]
    fn comp_alone_scales_then_saturates(params in arb_params()) {
        let m = InstantiatedModel::new(params);
        for n in 1..=40 {
            let alone = m.comp_alone(n);
            prop_assert!(alone <= n as f64 * params.b_comp_seq + 1e-9);
            prop_assert!(alone <= params.t_max_seq + 1e-9);
        }
    }
}

// ----------------------------------------------------------- calibration

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calibration_survives_any_noise_seed(seed in 0u64..10_000) {
        // Re-seed henri's noise arbitrarily; the pipeline must stay sound
        // and the parameters must remain in a physical range.
        let mut p = platforms::henri();
        p.behavior.noise.seed = seed;
        let (local, _remote) = calibration_sweeps(&p, BenchConfig::default());
        let params = calibrate(&local).unwrap();
        prop_assert!((4.0..8.0).contains(&params.b_comp_seq), "{params}");
        prop_assert!((9.0..13.0).contains(&params.b_comm_seq), "{params}");
        prop_assert!(params.n_max_par <= params.n_max_seq);
        prop_assert!(params.alpha > 0.1 && params.alpha <= 1.0);
    }

    #[test]
    fn fabric_solve_conserves_on_random_workloads(
        n_cores in 0usize..18,
        comp_numa in 0u16..2,
        comm_numa in 0u16..2,
    ) {
        let p = platforms::henri();
        let fabric = Fabric::new(&p);
        let streams = Fabric::benchmark_streams(
            n_cores,
            if n_cores > 0 { Some(NumaId::new(comp_numa)) } else { None },
            Some(NumaId::new(comm_numa)),
        );
        let solved = fabric.solve(&streams);
        for (load, cap) in solved.resource_load.iter().zip(&solved.capacities) {
            prop_assert!(*load <= *cap + 1e-6);
        }
        // The DMA stream always gets something (no starvation).
        let dma_total: f64 = solved
            .rates
            .iter()
            .zip(&streams)
            .filter(|(_, s)| matches!(s, StreamSpec::DmaRecv { .. }))
            .map(|(r, _)| *r)
            .sum();
        prop_assert!(dma_total > 0.5, "dma starved: {dma_total}");
    }

    #[test]
    fn sweep_points_are_physical(
        n in 1usize..18,
        comp_numa in 0u16..2,
        comm_numa in 0u16..2,
    ) {
        let p = platforms::henri();
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let pt = runner.measure_point(n, NumaId::new(comp_numa), NumaId::new(comm_numa));
        prop_assert!(pt.comp_alone > 0.0);
        prop_assert!(pt.comm_alone > 0.0);
        prop_assert!(pt.comp_par > 0.0);
        prop_assert!(pt.comm_par > 0.0);
        // Parallel can never (beyond noise) beat alone.
        prop_assert!(pt.comp_par <= pt.comp_alone * 1.1);
        prop_assert!(pt.comm_par <= pt.comm_alone * 1.1);
    }
}

// ------------------------------------------------------------- CSV codec

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_parser_never_panics_on_garbage(text in "\\PC*") {
        // Any input must produce Ok or a structured error — never a panic.
        let _ = PlatformSweep::from_csv(&text);
    }

    #[test]
    fn csv_parser_never_panics_on_header_plus_garbage(body in "\\PC*") {
        let text = format!(
            "platform,m_comp,m_comm,n_cores,a,b,c,d\n{body}"
        );
        let _ = PlatformSweep::from_csv(&text);
    }

    #[test]
    fn csv_round_trips_arbitrary_sweeps(
        values in proptest::collection::vec((0.1f64..200.0, 0.1f64..30.0, 0.1f64..200.0, 0.1f64..30.0), 1..20),
    ) {
        let sweep = PlatformSweep {
            platform: "prop".into(),
            sweeps: vec![PlacementSweep {
                m_comp: NumaId::new(0),
                m_comm: NumaId::new(1),
                points: values
                    .iter()
                    .enumerate()
                    .map(|(i, &(ca, ma, cp, mp))| SweepPoint {
                        n_cores: i + 1,
                        comp_alone: ca,
                        comm_alone: ma,
                        comp_par: cp,
                        comm_par: mp,
                    })
                    .collect(),
            }],
        };
        let parsed = PlatformSweep::from_csv(&sweep.to_csv()).unwrap();
        prop_assert_eq!(parsed.sweeps.len(), 1);
        prop_assert_eq!(parsed.sweeps[0].points.len(), values.len());
        for (a, b) in sweep.sweeps[0].points.iter().zip(&parsed.sweeps[0].points) {
            prop_assert!((a.comp_alone - b.comp_alone).abs() < 1e-4);
            prop_assert!((a.comm_par - b.comm_par).abs() < 1e-4);
        }
    }
}
