//! The model limitations the paper documents (§IV-C1), demonstrated as
//! *negative results* on purpose-built configurations. A reproduction that
//! only shows successes is not a reproduction.

use memory_contention::prelude::*;
use memory_contention::topology::platforms::grillon_nps4;

fn table2_row(platform: &Platform, config: BenchConfig) -> ErrorBreakdown {
    let sweep = sweep_platform_parallel(platform, config);
    let (s_local, s_remote) = calibration_placements(platform);
    let model = ContentionModel::calibrate(
        &platform.topology,
        sweep.placement(s_local.0, s_local.1).expect("local sample"),
        sweep
            .placement(s_remote.0, s_remote.1)
            .expect("remote sample"),
    )
    .expect("calibration succeeds");
    evaluate(&model, &sweep, &[s_local, s_remote])
}

#[test]
fn many_numa_nodes_break_formula_6() {
    // "On machines with many NUMA nodes (more than 4), network
    // performances under memory contention depend on data locality and the
    // heuristic given by formula 6 is not sufficiently accurate anymore."
    let grillon = grillon_nps4();
    assert_eq!(grillon.topology.numa_count(), 8);
    let e8 = table2_row(&grillon, BenchConfig::default());

    // Calibration still works and computations are still well predicted…
    assert!(e8.comp_all < 6.0, "{e8:?}");
    // …but the communication error on unseen placements is far above the
    // paper's ≈ 4 % headline: the binary local/remote split flattens the
    // eight-level NIC-distance gradient.
    assert!(
        e8.comm_non_samples > 6.0,
        "expected degraded comm prediction on 8 NUMA nodes, got {e8:?}"
    );

    // The same hardware exposed as 2 NUMA nodes (diablo-like) predicts
    // communications much better: the limitation is the node count, not
    // the machine.
    let diablo = platforms::by_name("diablo").unwrap();
    let e2 = table2_row(&diablo, BenchConfig::default());
    assert!(
        e8.comm_non_samples > 2.0 * e2.comm_non_samples,
        "8-NUMA comm error {:.2} vs 2-NUMA {:.2}",
        e8.comm_non_samples,
        e2.comm_non_samples
    );
}

#[test]
fn samples_remain_accurate_even_where_the_heuristic_fails() {
    // The per-instantiation equations (1)-(5) are sound; only the
    // placement combination degrades. On the calibration placements the
    // grillon error stays small.
    let e = table2_row(&grillon_nps4(), BenchConfig::default());
    assert!(
        e.comm_samples < e.comm_non_samples / 2.0,
        "sample error should stay small: {e:?}"
    );
}

#[test]
fn henri_decay_onset_is_predicted_late() {
    // §IV-B a: "our model reflects the correct impact on communications
    // too late (the model predicts a decrease starting with 14 computing
    // cores, while it is 10 in reality)". Our henri reproduces a milder
    // version of the same flaw: the measured communication bandwidth
    // starts to drop before the model says it should.
    let p = platforms::by_name("henri").unwrap();
    let sweep = sweep_platform_parallel(&p, BenchConfig::exact());
    let (s_local, s_remote) = calibration_placements(&p);
    let model = ContentionModel::calibrate(
        &p.topology,
        sweep.placement(s_local.0, s_local.1).unwrap(),
        sweep.placement(s_remote.0, s_remote.1).unwrap(),
    )
    .unwrap();

    let local = sweep.placement(s_local.0, s_local.1).unwrap();
    let nominal = local.comm_alone_mean();
    let measured_onset = local
        .points
        .iter()
        .find(|pt| pt.comm_par < 0.97 * nominal)
        .map(|pt| pt.n_cores)
        .expect("measured comm degrades");
    let predicted_onset = (1..=p.max_compute_cores())
        .find(|&n| model.predict(n, s_local.0, s_local.1).comm < 0.97 * nominal)
        .expect("predicted comm degrades");
    assert!(
        measured_onset <= predicted_onset,
        "measured onset n={measured_onset} vs predicted n={predicted_onset}"
    );
}

#[test]
fn pyxis_nonsample_comm_is_the_worst_case() {
    // §IV-B e + Table II: the pyxis architecture's locality behaviour is
    // "more complicated to predict by just relying on the locality of the
    // data" — its non-sample communication error dwarfs every other
    // platform's.
    let cfg = BenchConfig::default();
    let pyxis = table2_row(&platforms::by_name("pyxis").unwrap(), cfg);
    for name in ["henri", "henri-subnuma", "dahu", "diablo", "occigen"] {
        let other = table2_row(&platforms::by_name(name).unwrap(), cfg);
        assert!(
            pyxis.comm_non_samples > other.comm_non_samples,
            "pyxis {:.2} vs {name} {:.2}",
            pyxis.comm_non_samples,
            other.comm_non_samples
        );
    }
}
