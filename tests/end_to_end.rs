//! End-to-end reproduction tests: the full paper pipeline — measure every
//! placement, calibrate the model from the two samples, predict, score —
//! must land in the error bands of the paper's Table II on every platform.

use memory_contention::prelude::*;

/// Run the full pipeline on one platform and return the Table II row.
fn table2_row(platform: &Platform, config: BenchConfig) -> ErrorBreakdown {
    let sweep = sweep_platform_parallel(platform, config);
    let (sample_local, sample_remote) = calibration_placements(platform);
    let local = sweep
        .placement(sample_local.0, sample_local.1)
        .expect("local sample measured");
    let remote = sweep
        .placement(sample_remote.0, sample_remote.1)
        .expect("remote sample measured");
    let model = ContentionModel::calibrate(&platform.topology, local, remote)
        .expect("calibration succeeds");
    evaluate(&model, &sweep, &[sample_local, sample_remote])
}

#[test]
fn overall_average_error_is_paper_grade() {
    // Paper: 2.51 % average over the six platforms.
    let rows: Vec<ErrorBreakdown> = platforms::all()
        .iter()
        .map(|p| table2_row(p, BenchConfig::default()))
        .collect();
    let avg = rows.iter().map(|e| e.average).sum::<f64>() / rows.len() as f64;
    assert!((1.0..4.0).contains(&avg), "average error {avg:.2} %");
}

#[test]
fn per_platform_errors_match_the_papers_ordering() {
    let cfg = BenchConfig::default();
    let row = |name: &str| table2_row(&platforms::by_name(name).unwrap(), cfg);

    let occigen = row("occigen");
    let pyxis = row("pyxis");
    let henri = row("henri");
    let subnuma = row("henri-subnuma");
    let dahu = row("dahu");
    let diablo = row("diablo");

    // occigen is by far the best-predicted platform; pyxis the worst.
    for other in [&pyxis, &henri, &subnuma, &dahu, &diablo] {
        assert!(occigen.average < other.average);
    }
    for other in [&occigen, &henri, &subnuma, &dahu, &diablo] {
        assert!(pyxis.average > other.average);
    }
    // pyxis' pain is specifically non-sample communication predictions.
    assert!(pyxis.comm_non_samples > 3.0 * pyxis.comm_samples);
    assert!((5.0..25.0).contains(&pyxis.comm_non_samples));
    // Every platform predicts computations within 5 %.
    for e in [&occigen, &pyxis, &henri, &subnuma, &dahu, &diablo] {
        assert!(e.comp_all < 5.0, "{e:?}");
    }
}

#[test]
fn calibration_needs_only_two_sweeps() {
    // The headline claim: two measured placements predict the whole 4x4
    // grid of henri-subnuma within a few percent.
    let p = platforms::by_name("henri-subnuma").unwrap();
    let e = table2_row(&p, BenchConfig::default());
    assert_eq!(p.topology.placement_combinations().len(), 16);
    assert!(e.comm_non_samples < 10.0, "{e:?}");
    assert!(e.comp_non_samples < 5.0, "{e:?}");
}

#[test]
fn event_driven_backend_reproduces_analytic_errors() {
    // The discrete-event engine is the "real" benchmark; the analytic
    // path must be a faithful shortcut. Compare full Table II rows on one
    // platform.
    let p = platforms::by_name("henri").unwrap();
    let analytic = table2_row(&p, BenchConfig::default());
    let event = table2_row(&p, BenchConfig::event_driven());
    assert!(
        (analytic.average - event.average).abs() < 1.5,
        "analytic {analytic:?} vs event-driven {event:?}"
    );
}

#[test]
fn exact_mode_reduces_sample_error() {
    // Without measurement noise, the sample-placement error isolates the
    // model-form error (the henri early-decay quirk); it must not grow.
    let p = platforms::by_name("dahu").unwrap();
    let noisy = table2_row(&p, BenchConfig::default());
    let exact = table2_row(&p, BenchConfig::exact());
    assert!(exact.comp_samples <= noisy.comp_samples + 0.3);
}

#[test]
fn models_serialize_and_round_trip_through_csv() {
    // A sweep written to CSV and read back calibrates to the identical
    // model.
    let p = platforms::by_name("henri").unwrap();
    let sweep = sweep_platform_parallel(&p, BenchConfig::default());
    let parsed = PlatformSweep::from_csv(&sweep.to_csv()).expect("parse back");
    let (s_local, s_remote) = calibration_placements(&p);
    let model_a = ContentionModel::calibrate(
        &p.topology,
        sweep.placement(s_local.0, s_local.1).unwrap(),
        sweep.placement(s_remote.0, s_remote.1).unwrap(),
    )
    .unwrap();
    let model_b = ContentionModel::calibrate(
        &p.topology,
        parsed.placement(s_local.0, s_local.1).unwrap(),
        parsed.placement(s_remote.0, s_remote.1).unwrap(),
    )
    .unwrap();
    for (m_comp, m_comm) in model_a.placements() {
        for n in [1usize, 5, 9, 17] {
            let a = model_a.predict(n, m_comp, m_comm);
            let b = model_b.predict(n, m_comp, m_comm);
            assert!((a.comp - b.comp).abs() < 1e-4);
            assert!((a.comm - b.comm).abs() < 1e-4);
        }
    }
}
