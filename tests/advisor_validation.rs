//! Closing the loop: the placement advisor predicts a phase makespan from
//! the *analytical model*; the MPI-world simulator *executes* the same
//! phase against the fabric. The two must agree — otherwise the advisor's
//! recommendations would be fiction.

use memory_contention::prelude::*;

/// Simulate one overlapped phase in the MPI world and return its makespan.
fn simulate_phase(
    platform: &Platform,
    n_cores: usize,
    m_comp: NumaId,
    m_comm: NumaId,
    compute_bytes: f64,
    comm_bytes: f64,
) -> f64 {
    let mut world = World::pair(platform);
    let per_core = (compute_bytes / n_cores as f64) as u64;
    let recv = world
        .irecv(0, 1, m_comm, comm_bytes as u64, Tag(0))
        .expect("post receive");
    world
        .isend(1, 0, m_comm, comm_bytes as u64, Tag(0))
        .expect("post send");
    let job = world
        .start_compute(0, m_comp, n_cores, per_core)
        .expect("start compute");
    let t_job = world.wait_job(job).expect("compute completes");
    let t_recv = world.wait(recv).expect("message arrives");
    t_job.max(t_recv)
}

/// Build the calibrated model for a platform.
fn model_for(platform: &Platform) -> ContentionModel {
    let (local, remote) = calibration_sweeps(platform, BenchConfig::exact());
    ContentionModel::calibrate(&platform.topology, &local, &remote).expect("calibration succeeds")
}

#[test]
fn advisor_makespans_match_simulated_execution() {
    let platform = platforms::by_name("henri").unwrap();
    let model = model_for(&platform);
    let compute_bytes = 40e9;
    let comm_bytes = 4e9;

    // Check several configurations spanning no-contention to saturation.
    for &(n, comp, comm) in &[
        (4usize, 0u16, 0u16),
        (10, 0, 0),
        (17, 0, 0),
        (17, 0, 1),
        (12, 1, 0),
    ] {
        let pred = model.predict(n, NumaId::new(comp), NumaId::new(comm));
        let alone = model.predict_alone(n, NumaId::new(comp), NumaId::new(comm));
        let predicted =
            memory_contention::model::two_phase_makespan(pred, alone, compute_bytes, comm_bytes);
        let simulated = simulate_phase(
            &platform,
            n,
            NumaId::new(comp),
            NumaId::new(comm),
            compute_bytes,
            comm_bytes,
        );
        let rel = (predicted - simulated).abs() / simulated;
        // The two-phase estimate captures the post-overlap speed-up; the
        // residual error is the model's own prediction error plus protocol
        // overheads the analytic path ignores.
        assert!(
            rel < 0.10,
            "n={n} comp=numa{comp} comm=numa{comm}: predicted {predicted:.3}s vs \
             simulated {simulated:.3}s ({:.0} % off)",
            rel * 100.0
        );
    }
}

#[test]
fn advisor_ranking_agrees_with_simulation_on_the_winner() {
    // The configuration the advisor ranks first must actually beat the one
    // it ranks last, when both are executed in the simulator.
    let platform = platforms::by_name("henri-subnuma").unwrap();
    let model = model_for(&platform);
    let phase = PhaseProfile {
        compute_bytes: 30e9,
        comm_bytes: 10e9,
        max_cores: 17,
    };
    let ranked = rank(&model, &phase);
    let best = &ranked[0];
    let worst = ranked.last().unwrap();

    let run = |r: &memory_contention::model::Recommendation| {
        simulate_phase(
            &platform,
            r.n_cores,
            r.m_comp,
            r.m_comm,
            phase.compute_bytes,
            phase.comm_bytes,
        )
    };
    let t_best = run(best);
    let t_worst = run(worst);
    assert!(
        t_best < t_worst,
        "advisor's best ({:.3}s simulated) must beat its worst ({:.3}s)",
        t_best,
        t_worst
    );
}
