//! Property tests of the discrete-event engine and the MPI world:
//! conservation laws (bytes never exceed rate × time), window accounting,
//! and scheduling invariants under randomised activity mixes.

use proptest::prelude::*;

use memory_contention::memsim::{Activity, ActivityKind, Engine, Fabric};
use memory_contention::prelude::*;

fn compute_activity(numa: u16, bytes_per_pass: f64, start: f64) -> Activity {
    Activity {
        kind: ActivityKind::Compute {
            numa: NumaId::new(numa),
            bytes_per_pass,
            pass_overhead: 2e-6,
        },
        start,
    }
}

fn comm_activity(numa: u16, msg_bytes: f64) -> Activity {
    Activity {
        kind: ActivityKind::CommRecv {
            numa: NumaId::new(numa),
            msg_bytes,
            handshake: 3e-6,
            gap: 1e-6,
        },
        start: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_conserves_bytes_and_respects_capacity(
        n_compute in 0usize..12,
        comp_numa in 0u16..2,
        comm_numa in 0u16..2,
        bytes_per_pass in 1e6f64..5e8,
        msg_mb in 1u64..64,
    ) {
        let platform = platforms::henri();
        let fabric = Fabric::new(&platform);
        let mut acts: Vec<Activity> = (0..n_compute)
            .map(|i| compute_activity(comp_numa, bytes_per_pass, i as f64 * 1e-5))
            .collect();
        acts.push(comm_activity(comm_numa, (msg_mb << 20) as f64));
        let horizon = 0.08;
        let report = Engine::new(&fabric).run(&acts, 0.02, horizon);

        for (r, a) in report.activities.iter().zip(&acts) {
            // Bytes in window never exceed total bytes; both non-negative.
            prop_assert!(r.measured_bytes >= 0.0);
            prop_assert!(r.total_bytes + 1.0 >= r.measured_bytes);
            // No stream can exceed its physical ceiling.
            let ceiling = match a.kind {
                ActivityKind::Compute { .. } => 5.6,
                _ => fabric.dma_demand(NumaId::new(comm_numa)),
            };
            prop_assert!(
                r.bandwidth <= ceiling + 1e-6,
                "bandwidth {} over ceiling {ceiling}",
                r.bandwidth
            );
        }
        // Aggregate totals bounded by the controller capacity (plus both
        // controllers when streams are split).
        let total = report.compute_bandwidth(&acts) + report.comm_bandwidth(&acts);
        prop_assert!(total <= 2.0 * 80.0 + 1e-6);
    }

    #[test]
    fn engine_report_is_deterministic(
        n_compute in 1usize..8,
        msg_mb in 1u64..32,
    ) {
        let platform = platforms::dahu();
        let fabric = Fabric::new(&platform);
        let mut acts: Vec<Activity> = (0..n_compute)
            .map(|i| compute_activity(0, 1e8, i as f64 * 1e-5))
            .collect();
        acts.push(comm_activity(0, (msg_mb << 20) as f64));
        let engine = Engine::new(&fabric);
        let a = engine.run(&acts, 0.01, 0.05);
        let b = engine.run(&acts, 0.01, 0.05);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn world_transfer_times_scale_with_message_size(
        mb in 1u64..64,
        cores in 0usize..10,
    ) {
        let platform = platforms::henri();
        let mut w = World::pair(&platform);
        if cores > 0 {
            w.start_compute(0, NumaId::new(0), cores, 32 << 30).unwrap();
        }
        let small = w.irecv(0, 1, NumaId::new(0), 1 << 20, Tag(1)).unwrap();
        w.isend(1, 0, NumaId::new(0), 1 << 20, Tag(1)).unwrap();
        let t_small = w.wait(small).unwrap();
        let big = w.irecv(0, 1, NumaId::new(0), mb << 20, Tag(2)).unwrap();
        w.isend(1, 0, NumaId::new(0), mb << 20, Tag(2)).unwrap();
        let t_big = w.wait(big).unwrap() - t_small;
        // A bigger message never transfers faster than a 1 MiB one.
        prop_assert!(t_big + 1e-9 >= (t_small) * 0.9 || mb == 1);
        prop_assert!(t_big > 0.0);
    }

    #[test]
    fn world_clock_is_monotone_under_random_program(
        ops in proptest::collection::vec(0u8..3, 1..12),
    ) {
        let platform = platforms::occigen();
        let mut w = World::pair(&platform);
        let mut last = 0.0f64;
        let mut tag = 0u32;
        for op in ops {
            match op {
                0 => {
                    let r = w.irecv(0, 1, NumaId::new(0), 4 << 20, Tag(tag)).unwrap();
                    w.isend(1, 0, NumaId::new(0), 4 << 20, Tag(tag)).unwrap();
                    let t = w.wait(r).unwrap();
                    prop_assert!(t + 1e-12 >= last);
                    last = t;
                    tag += 1;
                }
                1 => {
                    let j = w.start_compute(0, NumaId::new(0), 2, 64 << 20).unwrap();
                    let t = w.wait_job(j).unwrap();
                    prop_assert!(t + 1e-12 >= last);
                    last = t;
                }
                _ => {
                    w.advance_by(1e-4);
                    prop_assert!(w.now() + 1e-12 >= last);
                    last = w.now();
                }
            }
        }
    }
}
