//! Property tests of the discrete-event engine and the MPI world:
//! conservation laws (bytes never exceed rate × time), window accounting,
//! and scheduling invariants under randomised activity mixes.

use proptest::prelude::*;

use memory_contention::memsim::{
    allocate, allocate_into, Activity, ActivityKind, Allocation, Engine, Fabric, FlowReq, FlowSet,
    SolverScratch,
};
use memory_contention::prelude::*;

fn compute_activity(numa: u16, bytes_per_pass: f64, start: f64) -> Activity {
    Activity {
        kind: ActivityKind::Compute {
            numa: NumaId::new(numa),
            bytes_per_pass,
            pass_overhead: 2e-6,
        },
        start,
    }
}

fn comm_activity(numa: u16, msg_bytes: f64) -> Activity {
    Activity {
        kind: ActivityKind::CommRecv {
            numa: NumaId::new(numa),
            msg_bytes,
            handshake: 3e-6,
            gap: 1e-6,
        },
        start: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_conserves_bytes_and_respects_capacity(
        n_compute in 0usize..12,
        comp_numa in 0u16..2,
        comm_numa in 0u16..2,
        bytes_per_pass in 1e6f64..5e8,
        msg_mb in 1u64..64,
    ) {
        let platform = platforms::henri();
        let fabric = Fabric::new(&platform);
        let mut acts: Vec<Activity> = (0..n_compute)
            .map(|i| compute_activity(comp_numa, bytes_per_pass, i as f64 * 1e-5))
            .collect();
        acts.push(comm_activity(comm_numa, (msg_mb << 20) as f64));
        let horizon = 0.08;
        let report = Engine::new(&fabric).run(&acts, 0.02, horizon);

        for (r, a) in report.activities.iter().zip(&acts) {
            // Bytes in window never exceed total bytes; both non-negative.
            prop_assert!(r.measured_bytes >= 0.0);
            prop_assert!(r.total_bytes + 1.0 >= r.measured_bytes);
            // No stream can exceed its physical ceiling.
            let ceiling = match a.kind {
                ActivityKind::Compute { .. } => 5.6,
                _ => fabric.dma_demand(NumaId::new(comm_numa)),
            };
            prop_assert!(
                r.bandwidth <= ceiling + 1e-6,
                "bandwidth {} over ceiling {ceiling}",
                r.bandwidth
            );
        }
        // Aggregate totals bounded by the controller capacity (plus both
        // controllers when streams are split).
        let total = report.compute_bandwidth(&acts) + report.comm_bandwidth(&acts);
        prop_assert!(total <= 2.0 * 80.0 + 1e-6);
    }

    #[test]
    fn engine_report_is_deterministic(
        n_compute in 1usize..8,
        msg_mb in 1u64..32,
    ) {
        let platform = platforms::dahu();
        let fabric = Fabric::new(&platform);
        let mut acts: Vec<Activity> = (0..n_compute)
            .map(|i| compute_activity(0, 1e8, i as f64 * 1e-5))
            .collect();
        acts.push(comm_activity(0, (msg_mb << 20) as f64));
        let engine = Engine::new(&fabric);
        let a = engine.run(&acts, 0.01, 0.05);
        let b = engine.run(&acts, 0.01, 0.05);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn arena_solver_matches_reference_allocate(
        caps in proptest::collection::vec(0.5f64..120.0, 6),
        flow_data in proptest::collection::vec(
            (0u8..2, 0.1f64..60.0, 0.0f64..1.0, proptest::collection::vec(0usize..6, 0..4)),
            0..10,
        ),
    ) {
        // The arena/scratch solver must return the reference allocation
        // bit-for-bit — the engine's solve memoization depends on it.
        let flows: Vec<FlowReq> = flow_data
            .iter()
            .map(|(class, demand, floor_frac, path)| {
                if *class == 0 {
                    FlowReq::cpu(path.clone(), *demand)
                } else {
                    FlowReq::dma(path.clone(), *demand, demand * floor_frac)
                }
            })
            .collect();
        let reference = allocate(&caps, &flows);
        let arena = FlowSet::from_reqs(&flows);
        let mut scratch = SolverScratch::default();
        let mut out = Allocation::default();
        // Twice through the same scratch: cold and warm must both agree.
        for pass in 0..2 {
            allocate_into(&caps, &arena, &mut scratch, &mut out);
            prop_assert_eq!(reference.rates.len(), out.rates.len());
            for (a, b) in reference.rates.iter().zip(&out.rates) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "rate differs on pass {}", pass);
            }
            for (a, b) in reference.resource_load.iter().zip(&out.resource_load) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "load differs on pass {}", pass);
            }
        }
    }

    #[test]
    fn memoized_engine_run_equals_uncached(
        n_compute in 0usize..10,
        comp_numa in 0u16..2,
        comm_numa in 0u16..2,
        msg_mb in 1u64..32,
        scale_pct in 50u32..150,
    ) {
        let platform = platforms::henri();
        let fabric = Fabric::new(&platform);
        let mut acts: Vec<Activity> = (0..n_compute)
            .map(|i| compute_activity(comp_numa, 1e8, i as f64 * 1e-5))
            .collect();
        acts.push(comm_activity(comm_numa, (msg_mb << 20) as f64));
        let scale = scale_pct as f64 / 100.0;
        let memoized = Engine::with_cpu_scale(&fabric, scale);
        let uncached = Engine::with_cpu_scale(&fabric, scale).uncached();
        let a = memoized.run(&acts, 0.01, 0.06);
        let b = uncached.run(&acts, 0.01, 0.06);
        // Identical measurements, bit-for-bit.
        prop_assert_eq!(a.activities.len(), b.activities.len());
        for (x, y) in a.activities.iter().zip(&b.activities) {
            prop_assert_eq!(x.measured_bytes.to_bits(), y.measured_bytes.to_bits());
            prop_assert_eq!(x.total_bytes.to_bits(), y.total_bytes.to_bits());
            prop_assert_eq!(x.bandwidth.to_bits(), y.bandwidth.to_bits());
            prop_assert_eq!(x.units_done, y.units_done);
        }
        prop_assert_eq!(a.events, b.events);
        // The uncached engine never consults the cache; the memoized one
        // never does more solver work than it.
        prop_assert_eq!(b.stats.cache_hits, 0);
        prop_assert!(a.stats.invocations <= b.stats.invocations);
        // Repeating the run on the memoized engine is answered from the
        // cache alone and still matches.
        let c = memoized.run(&acts, 0.01, 0.06);
        prop_assert_eq!(c.stats.invocations, 0);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn world_transfer_times_scale_with_message_size(
        mb in 1u64..64,
        cores in 0usize..10,
    ) {
        let platform = platforms::henri();
        let mut w = World::pair(&platform);
        if cores > 0 {
            w.start_compute(0, NumaId::new(0), cores, 32 << 30).unwrap();
        }
        let small = w.irecv(0, 1, NumaId::new(0), 1 << 20, Tag(1)).unwrap();
        w.isend(1, 0, NumaId::new(0), 1 << 20, Tag(1)).unwrap();
        let t_small = w.wait(small).unwrap();
        let big = w.irecv(0, 1, NumaId::new(0), mb << 20, Tag(2)).unwrap();
        w.isend(1, 0, NumaId::new(0), mb << 20, Tag(2)).unwrap();
        let t_big = w.wait(big).unwrap() - t_small;
        // A bigger message never transfers faster than a 1 MiB one.
        prop_assert!(t_big + 1e-9 >= (t_small) * 0.9 || mb == 1);
        prop_assert!(t_big > 0.0);
    }

    #[test]
    fn world_clock_is_monotone_under_random_program(
        ops in proptest::collection::vec(0u8..3, 1..12),
    ) {
        let platform = platforms::occigen();
        let mut w = World::pair(&platform);
        let mut last = 0.0f64;
        let mut tag = 0u32;
        for op in ops {
            match op {
                0 => {
                    let r = w.irecv(0, 1, NumaId::new(0), 4 << 20, Tag(tag)).unwrap();
                    w.isend(1, 0, NumaId::new(0), 4 << 20, Tag(tag)).unwrap();
                    let t = w.wait(r).unwrap();
                    prop_assert!(t + 1e-12 >= last);
                    last = t;
                    tag += 1;
                }
                1 => {
                    let j = w.start_compute(0, NumaId::new(0), 2, 64 << 20).unwrap();
                    let t = w.wait_job(j).unwrap();
                    prop_assert!(t + 1e-12 >= last);
                    last = t;
                }
                _ => {
                    w.advance_by(1e-4);
                    prop_assert!(w.now() + 1e-12 >= last);
                    last = w.now();
                }
            }
        }
    }
}
