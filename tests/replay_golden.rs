//! Acceptance tests for the trace replay subsystem against the bundled
//! golden artifacts: the halo-exchange trace under `tests/golden/` must
//! replay deterministically (byte-for-byte report), show a strict
//! contention slowdown, and the placement search winner must equal the
//! brute-force minimum over every `(m_comp, m_comm)` placement.
//!
//! Regenerate the goldens after an intentional engine or report change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test replay_golden
//! ```

use memory_contention::replay::{replay, report, run_once, search, ReplayConfig, Trace};
use memory_contention::topology::{platforms, NumaId};

const TRACE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/halo2d_2x2.trace.jsonl"
);
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/halo2d_2x2.report.txt"
);

fn bundled_trace() -> Trace {
    let text = std::fs::read_to_string(TRACE_PATH).expect("bundled trace present");
    Trace::from_json_lines(&text).expect("bundled trace parses")
}

#[test]
fn bundled_halo_trace_matches_the_golden_report() {
    let trace = bundled_trace();
    let p = platforms::henri();
    let out = replay(&p, &trace, &ReplayConfig::default()).unwrap();
    let rendered = report::render(&out, p.name());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(REPORT_PATH, &rendered).expect("golden report written");
        return;
    }
    let golden = std::fs::read_to_string(REPORT_PATH).expect("golden report present");
    assert_eq!(
        rendered, golden,
        "replay report diverged from tests/golden/halo2d_2x2.report.txt \
         (rerun with UPDATE_GOLDEN=1 if the change is intentional)"
    );
}

#[test]
fn bundled_trace_replay_is_deterministic() {
    let trace = bundled_trace();
    let p = platforms::henri();
    let a = replay(&p, &trace, &ReplayConfig::default()).unwrap();
    let b = replay(&p, &trace, &ReplayConfig::default()).unwrap();
    assert_eq!(
        a.contended.makespan.to_bits(),
        b.contended.makespan.to_bits()
    );
    assert_eq!(a.baseline.makespan.to_bits(), b.baseline.makespan.to_bits());
    assert_eq!(report::render(&a, p.name()), report::render(&b, p.name()));
}

#[test]
fn bundled_trace_shows_a_strict_contention_slowdown() {
    let trace = bundled_trace();
    let out = replay(&platforms::henri(), &trace, &ReplayConfig::default()).unwrap();
    assert!(
        out.contended.makespan > out.baseline.makespan,
        "contended {} must strictly exceed baseline {}",
        out.contended.makespan,
        out.baseline.makespan
    );
    assert!(out.slowdown > 1.0, "slowdown {}", out.slowdown);
}

#[test]
fn search_winner_is_the_brute_force_minimum_on_a_two_numa_platform() {
    let trace = bundled_trace();
    let p = platforms::henri();
    assert_eq!(p.topology.numa_count(), 2);
    let found = search(&p, &trace, &[]).unwrap();
    assert_eq!(found.points.len(), 4);
    let mut best: Option<(f64, u16, u16)> = None;
    for comp in 0..2u16 {
        for comm in 0..2u16 {
            let run = run_once(
                &p,
                &trace,
                &ReplayConfig {
                    comp_numa: Some(NumaId::new(comp)),
                    comm_numa: Some(NumaId::new(comm)),
                    cores: None,
                    ..ReplayConfig::default()
                },
                true,
            )
            .unwrap();
            if best.is_none() || run.makespan < best.unwrap().0 {
                best = Some((run.makespan, comp, comm));
            }
        }
    }
    let (makespan, comp, comm) = best.unwrap();
    let w = found.winner();
    assert_eq!(w.makespan.to_bits(), makespan.to_bits());
    assert_eq!(w.m_comp, NumaId::new(comp));
    assert_eq!(w.m_comm, NumaId::new(comm));
}
