//! Degenerate-sweep matrix: every broken input shape must surface as a
//! *typed* error — never a panic — through the whole stack: `calibrate`,
//! `ContentionModel::calibrate`, and the CLI command layer (asserted by
//! exit code, not by message text).

use memory_contention::membench::record::{PlacementSweep, SweepColumn, SweepPoint};
use memory_contention::membench::{calibration_sweeps, BenchConfig};
use memory_contention::model::{calibrate, CalibrationError, ContentionModel};
use memory_contention::topology::{platforms, NumaId, Platform};

use mc_cli::{run, Args, CliError, EXIT_INVALID_DATA, EXIT_IO, EXIT_USAGE};

fn henri() -> Platform {
    platforms::henri()
}

fn henri_sweeps() -> (PlacementSweep, PlacementSweep) {
    calibration_sweeps(&henri(), BenchConfig::default())
}

fn local_sweep() -> PlacementSweep {
    henri_sweeps().0
}

fn empty_sweep() -> PlacementSweep {
    PlacementSweep {
        m_comp: NumaId::new(0),
        m_comm: NumaId::new(0),
        points: vec![],
    }
}

// ---- calibrate() ------------------------------------------------------

#[test]
fn empty_sweep_is_rejected() {
    assert_eq!(calibrate(&empty_sweep()), Err(CalibrationError::EmptySweep));
}

#[test]
fn single_point_sweep_is_rejected() {
    let mut sweep = local_sweep();
    sweep.points.truncate(1);
    assert_eq!(
        calibrate(&sweep),
        Err(CalibrationError::TooFewPoints { got: 1 })
    );
}

#[test]
fn all_zero_comm_column_is_rejected() {
    let mut sweep = local_sweep();
    for p in &mut sweep.points {
        p.comm_alone = 0.0;
    }
    assert!(matches!(
        calibrate(&sweep),
        Err(CalibrationError::NoCommBandwidth { b_comm_seq }) if b_comm_seq == 0.0
    ));
}

#[test]
fn nan_poisoned_sweep_is_rejected_with_location() {
    let mut sweep = local_sweep();
    let victim = sweep.points[4].n_cores;
    sweep.points[4].comp_par = f64::NAN;
    assert_eq!(
        calibrate(&sweep),
        Err(CalibrationError::NonFinite {
            column: SweepColumn::CompPar,
            n_cores: victim,
        })
    );
}

#[test]
fn infinite_measurement_is_rejected_like_nan() {
    let mut sweep = local_sweep();
    sweep.points[2].comm_par = f64::INFINITY;
    assert!(matches!(
        calibrate(&sweep),
        Err(CalibrationError::NonFinite {
            column: SweepColumn::CommPar,
            ..
        })
    ));
}

#[test]
fn unsorted_sweep_is_repaired_not_rejected() {
    let sorted = local_sweep();
    let expected = calibrate(&sorted).unwrap();
    let mut shuffled = sorted.clone();
    shuffled.points.reverse();
    shuffled.points.swap(3, 11);
    assert_eq!(calibrate(&shuffled).unwrap(), expected);
}

#[test]
fn missing_single_core_point_is_rejected() {
    let mut sweep = local_sweep();
    sweep.points.retain(|p| p.n_cores != 1);
    assert_eq!(calibrate(&sweep), Err(CalibrationError::MissingSingleCore));
}

#[test]
fn conflicting_duplicate_is_rejected() {
    let mut sweep = local_sweep();
    let mut dup = sweep.points[5];
    dup.comp_alone *= 1.5;
    let n = dup.n_cores;
    sweep.points.push(dup);
    assert_eq!(
        calibrate(&sweep),
        Err(CalibrationError::DuplicateCores { n_cores: n })
    );
}

#[test]
fn every_degenerate_error_message_is_distinct() {
    use std::collections::HashSet;
    let errors = [
        CalibrationError::EmptySweep,
        CalibrationError::TooFewPoints { got: 1 },
        CalibrationError::MissingSingleCore,
        CalibrationError::NonFinite {
            column: SweepColumn::CompPar,
            n_cores: 5,
        },
        CalibrationError::NoCommBandwidth { b_comm_seq: 0.0 },
        CalibrationError::DuplicateCores { n_cores: 5 },
    ];
    let messages: HashSet<String> = errors.iter().map(|e| e.to_string()).collect();
    assert_eq!(messages.len(), errors.len());
}

// ---- ContentionModel::calibrate ---------------------------------------

#[test]
fn model_calibrate_rejects_degenerate_local_sweep() {
    let (mut local, remote) = henri_sweeps();
    local.points.clear();
    let got = ContentionModel::calibrate(&henri().topology, &local, &remote);
    assert_eq!(got.unwrap_err(), CalibrationError::EmptySweep);
}

#[test]
fn model_calibrate_rejects_degenerate_remote_sweep() {
    let (local, mut remote) = henri_sweeps();
    for p in &mut remote.points {
        p.comm_alone = 0.0;
    }
    let got = ContentionModel::calibrate(&henri().topology, &local, &remote);
    assert!(matches!(got, Err(CalibrationError::NoCommBandwidth { .. })));
}

#[test]
fn model_calibrate_rejects_synthetic_flat_zero_sweep() {
    let zeros = PlacementSweep {
        m_comp: NumaId::new(0),
        m_comm: NumaId::new(0),
        points: (1..=4)
            .map(|n| SweepPoint {
                n_cores: n,
                comp_alone: 0.0,
                comm_alone: 0.0,
                comp_par: 0.0,
                comm_par: 0.0,
            })
            .collect(),
    };
    let got = ContentionModel::calibrate(&henri().topology, &zeros, &zeros);
    assert!(got.is_err(), "all-zero sweep must not calibrate");
}

// ---- CLI exit codes ---------------------------------------------------

fn cli(line: &[&str]) -> Result<String, CliError> {
    run(&Args::parse(line.iter().copied()).unwrap())
}

#[test]
fn cli_usage_errors_exit_2() {
    let cases: &[&[&str]] = &[
        &["calibrate", "--platform", "no-such-machine"],
        &["bench", "--platform", "henri", "--comp-numa", "9"],
        &["bench", "--platform", "henri", "--comm-numa", "250"],
        &[
            "predict",
            "--platform",
            "henri",
            "--cores",
            "0",
            "--comp-numa",
            "0",
            "--comm-numa",
            "0",
        ],
        &[
            "advise",
            "--platform",
            "henri",
            "--compute-gb",
            "1",
            "--comm-gb",
            "1",
            "--max-cores",
            "0",
        ],
        &["frobnicate"],
    ];
    for case in cases {
        let e = cli(case).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_USAGE, "{case:?} -> {e}");
        assert!(e.is_usage(), "{case:?}");
    }
}

#[test]
fn cli_missing_model_file_exits_4() {
    let e = cli(&[
        "predict",
        "--model",
        "/no/such/dir/model.txt",
        "--cores",
        "4",
        "--comp-numa",
        "0",
        "--comm-numa",
        "0",
    ])
    .unwrap_err();
    assert_eq!(e.exit_code(), EXIT_IO, "{e}");
    assert!(e.to_string().contains("/no/such/dir/model.txt"), "{e}");
}

#[test]
fn cli_corrupt_model_file_exits_3() {
    let path = std::env::temp_dir().join("memcontend-degenerate-model.txt");
    std::fs::write(&path, "this is not a model file\n").unwrap();
    let e = cli(&[
        "predict",
        "--model",
        path.to_str().unwrap(),
        "--cores",
        "4",
        "--comp-numa",
        "0",
        "--comm-numa",
        "0",
    ])
    .unwrap_err();
    std::fs::remove_file(&path).ok();
    assert_eq!(e.exit_code(), EXIT_INVALID_DATA, "{e}");
}

#[test]
fn cli_happy_paths_still_work() {
    assert!(cli(&["calibrate", "--platform", "henri"])
        .unwrap()
        .contains("M_local"));
    assert!(cli(&["evaluate", "--platform", "henri"])
        .unwrap()
        .contains("average"));
}
