//! `World::homogeneous` at application scale: sizes 4 and 8 on a 4-NUMA
//! platform. The replay report's guarantees lean on three properties
//! asserted here: collectives complete, recorded timestamps are monotone
//! and causally ordered, and repeating the identical schedule is
//! **bit-identical** (same f64s, not merely close ones).

use memory_contention::mpisim::collectives::{allreduce_ring, barrier, exchange};
use memory_contention::mpisim::{Tag, World};
use memory_contention::prelude::*;

const MB8: u64 = 8 << 20;

fn n(i: u16) -> NumaId {
    NumaId::new(i)
}

/// One multi-phase schedule mixing compute, collectives and point-to-point
/// traffic; returns every timestamp it produced, in order.
fn run_schedule(world_size: usize) -> Vec<f64> {
    let p = platforms::henri_subnuma();
    assert_eq!(
        p.topology.numa_count(),
        4,
        "henri-subnuma is the 4-NUMA box"
    );
    let mut w = World::homogeneous(&p, world_size);
    let mut times = Vec::new();

    // Phase 1: a barrier while rank 0 computes on another NUMA node.
    let job = w.start_compute(0, n(1), 4, 256 << 20).unwrap();
    times.push(barrier(&mut w, n(0)).unwrap());

    // Phase 2: ring allreduce on node 2.
    times.push(allreduce_ring(&mut w, n(2), MB8).unwrap());

    // Phase 3: pairwise exchange between ranks 0 and 1 on node 3.
    times.push(exchange(&mut w, 0, 1, n(3), MB8, Tag(42)).unwrap());

    // Phase 4: drain the compute job.
    times.push(w.wait_job(job).unwrap());

    // Collect the full histories too — matched/finished times of every
    // transfer, start/finish of every job.
    for tr in w.transfer_history() {
        times.push(tr.matched_at);
        times.push(tr.finished_at.expect("all transfers completed"));
    }
    for j in w.job_history() {
        times.push(j.started_at);
        times.push(j.finished_at.expect("all jobs completed"));
    }
    times.push(w.now());
    times
}

#[test]
fn collectives_complete_at_sizes_4_and_8_on_four_numa_nodes() {
    for size in [4usize, 8] {
        let p = platforms::henri_subnuma();
        let mut w = World::homogeneous(&p, size);
        let t_barrier = barrier(&mut w, n(0)).unwrap_or_else(|e| panic!("P={size}: {e}"));
        let t_allreduce =
            allreduce_ring(&mut w, n(1), MB8).unwrap_or_else(|e| panic!("P={size}: {e}"));
        let t_exchange = exchange(&mut w, 0, size - 1, n(3), MB8, Tag(7))
            .unwrap_or_else(|e| panic!("P={size}: {e}"));
        assert!(t_barrier > 0.0);
        assert!(t_allreduce > t_barrier, "collectives run back to back");
        assert!(t_exchange > t_allreduce);
    }
}

#[test]
fn schedule_timestamps_are_monotone_and_causal() {
    for size in [4usize, 8] {
        let times = run_schedule(size);
        // The four phase-completion times are strictly increasing.
        for w in times[..4].windows(2) {
            assert!(w[0] < w[1], "phase completions out of order: {times:?}");
        }
        // Every recorded timestamp is finite and non-negative, and no
        // transfer finished before it was matched.
        for &t in &times {
            assert!(t.is_finite() && t >= 0.0, "bad timestamp {t}");
        }
        let p = platforms::henri_subnuma();
        let mut w = World::homogeneous(&p, size);
        barrier(&mut w, n(0)).unwrap();
        for tr in w.transfer_history() {
            assert!(tr.finished_at.unwrap() > tr.matched_at);
        }
    }
}

#[test]
fn repeated_replays_are_bit_identical() {
    for size in [4usize, 8] {
        let a = run_schedule(size);
        let b = run_schedule(size);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "P={size}: timestamp {i} differs across replays: {x} vs {y}"
            );
        }
    }
}

/// A lighter schedule for large worlds: history recording off so the
/// run stays memory-bounded, one barrier, one ring allreduce, one
/// cross-world exchange. Returns the three completion times.
fn run_large_schedule(world_size: usize) -> Vec<f64> {
    let p = platforms::henri_subnuma();
    let mut w = World::homogeneous(&p, world_size);
    w.set_record_history(false);
    vec![
        barrier(&mut w, n(0)).unwrap(),
        allreduce_ring(&mut w, n(2), 1 << 20).unwrap(),
        exchange(&mut w, 0, world_size - 1, n(3), MB8, Tag(9)).unwrap(),
        w.now(),
    ]
}

#[test]
fn large_worlds_complete_and_replay_bit_identically() {
    // The streaming replay path leans on the same World mechanics at
    // 4096 ranks; 64 and 256 keep the test quick while exercising the
    // many-stream solver paths (256 concurrent streams per allreduce
    // round) far beyond the small-world cases above.
    for size in [64usize, 256] {
        let a = run_large_schedule(size);
        // Phase completions are strictly increasing; the final clock
        // reading coincides with the last completion.
        for w in a[..3].windows(2) {
            assert!(w[0] < w[1], "P={size}: out of order: {a:?}");
        }
        assert!(a[3] >= a[2], "P={size}: clock ran backwards: {a:?}");
        for &t in &a {
            assert!(t.is_finite() && t > 0.0, "P={size}: bad timestamp {t}");
        }
        let b = run_large_schedule(size);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "P={size}: timestamp {i} differs across replays: {x} vs {y}"
            );
        }
    }
}

#[test]
fn uncontended_baseline_never_exceeds_contended_time() {
    for size in [4usize, 8] {
        let p = platforms::henri_subnuma();
        let run = |contended: bool| {
            let mut w = World::homogeneous(&p, size);
            w.set_contended(contended);
            // Compute pressure on the collective's NUMA node on every rank.
            for r in 0..size {
                w.start_compute(r, n(0), 8, 512 << 20).unwrap();
            }
            allreduce_ring(&mut w, n(0), 32 << 20).unwrap()
        };
        let contended = run(true);
        let baseline = run(false);
        assert!(
            contended > baseline,
            "P={size}: contended {contended} <= baseline {baseline}"
        );
    }
}
