//! Offline shim standing in for the real `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! a small wall-clock benchmarking harness with the same source surface
//! the repository's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology (simpler than real criterion, adequate for regression
//! tracking): each benchmark is warmed up for ~50 ms, then timed in
//! batches until `sample_size` samples are collected; the reported figure
//! is the median per-iteration time. Results print one line per benchmark:
//!
//! ```text
//! bench engine/parallel_phase/henri ... median 1.234 ms/iter (20 samples)
//! ```
//!
//! Set `CRITERION_SHIM_JSON=/path/out.json` to additionally append
//! newline-delimited JSON records (`{"name": ..., "median_ns": ...}`) —
//! used by the repo's BENCH snapshots.

#![allow(clippy::all)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration for compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 40,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, 40, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_bench(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; exists for source compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Measure `f`: warm up, then collect `sample_size` batch samples and
    /// keep the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (~50 ms) while estimating the per-iteration cost.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        // Batch size targeting ~5 ms per sample.
        let batch = ((5e6 / per_iter.max(1.0)).ceil() as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
        self.samples = samples.len();
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        median_ns: f64::NAN,
        samples: 0,
    };
    f(&mut b);
    println!(
        "bench {name} ... median {} ({} samples)",
        format_ns(b.median_ns),
        b.samples
    );
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"name\": \"{name}\", \"median_ns\": {:.1}, \"samples\": {}}}",
                b.median_ns, b.samples
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut captured = 0.0;
        group.bench_with_input(BenchmarkId::from_parameter("noop"), &17u64, |b, &x| {
            b.iter(|| x * 2);
            captured = b.median_ns;
        });
        group.finish();
        assert!(captured >= 0.0);
    }
}
