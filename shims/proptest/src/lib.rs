//! Offline shim standing in for the real `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the *subset* of proptest the repository's property tests
//! use: the [`proptest!`] macro, range/tuple/`Just`/string strategies,
//! `prop_map` / `prop_filter` combinators, [`collection::vec`],
//! [`prop_oneof!`], `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs but is
//!   not minimised;
//! * **deterministic seeding** — the RNG is seeded from the test name, so
//!   failures reproduce across runs without a regression file;
//! * string strategies ignore the regex pattern and generate arbitrary
//!   printable text (the repo only uses `"\\PC*"`, i.e. "any chars").
//!
//! The API is source-compatible for this repository: swapping back to the
//! crates.io proptest requires only the workspace `Cargo.toml` change.

#![allow(clippy::all)]

use std::fmt;
use std::ops::Range;

// --------------------------------------------------------------- RNG

/// SplitMix64 — small, fast, deterministic; quality is ample for test-case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in [0, bound) (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Stable 64-bit FNV-1a hash of a string — used to derive per-test seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// --------------------------------------------------------------- errors

/// A failed property inside a test case (carries the formatted message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

// ------------------------------------------------------------- strategy

/// A generator of values of one type. Unlike real proptest there is no
/// value tree: `generate` directly yields a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred`, regenerating (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Box the strategy (object form used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe boxed strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
    }
}

/// Union of same-typed strategies; picks one uniformly (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union from boxed options (non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// Numeric ranges as strategies (half-open, like real proptest).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as regex strategies in real proptest. The shim
/// ignores the pattern and generates arbitrary printable text (ASCII plus
/// some multi-byte code points), which matches the repo's only usage,
/// `"\\PC*"` ("any printable characters").
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(80);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(8) {
                // Mostly ASCII printable, sprinkled with separators and
                // multi-byte characters to stress parsers.
                0..=4 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                5 => ',',
                6 => char::from_u32(0x00C0 + rng.below(0x100) as u32).unwrap_or('é'),
                _ => char::from_u32(0x4E00 + rng.below(0x200) as u32).unwrap_or('中'),
            };
            s.push(c);
        }
        s
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

// ----------------------------------------------------------- collection

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------- config

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// `proptest::test_runner` namespace for source compatibility.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
}

// --------------------------------------------------------------- macros

/// Assert inside a proptest body; failure aborts the case with context
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Choose between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Generation-only re-implementation of proptest's entry macro. Supports
/// an optional leading `#![proptest_config(..)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr)) => {};
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let _ = &mut rng;
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                // Render the inputs before the body can consume them.
                let inputs = ::std::format!("{:#?}", ($(&$arg,)*));
                let outcome: $crate::TestCaseResult = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let u = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&u));
            let f = Strategy::generate(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u8..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(x in 0usize..10, v in collection::vec(0.0f64..1.0, 0..4)) {
            prop_assert!(x < 10);
            for e in &v {
                prop_assert!((0.0..1.0).contains(e), "{e} out of range");
            }
        }
    }
}
