//! Offline shim standing in for the real `serde` crate.
//!
//! The build environment has no access to crates.io, and the repository
//! never serialises through serde at runtime — every persisted artefact
//! (calibrated models, CSV sweeps) uses hand-rolled text codecs. The
//! `#[derive(Serialize, Deserialize)]` attributes scattered over the data
//! types are forward-looking markers only. This shim keeps those derives
//! compiling: the traits are empty markers with blanket impls and the
//! derive macros expand to nothing.
//!
//! If real serialisation is ever needed, replace the `serde` entry in the
//! workspace `Cargo.toml` with the crates.io dependency — no source
//! changes required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so `T: Serialize` bounds are always satisfied.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types so `T: Deserialize<'de>` bounds are always satisfied.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for `serde::de` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser` paths.
pub mod ser {
    pub use crate::Serialize;
}
