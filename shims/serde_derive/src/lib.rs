//! No-op derive macros backing the offline `serde` shim.
//!
//! The repository only uses `#[derive(Serialize, Deserialize)]` as a
//! marker (all persistence is hand-rolled text/CSV), so the derives can
//! expand to nothing: the shim traits carry blanket impls.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl. Registers
/// the `#[serde(...)]` helper attribute like the real derive so field
/// annotations (e.g. `#[serde(default)]`) parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl. Registers
/// the `#[serde(...)]` helper attribute like the real derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
